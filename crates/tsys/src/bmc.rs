//! The bounded model checker.

use std::time::{Duration, Instant};

use sepe_smt::{IncrementalSolver, Model, SatResult, Solver, SolverReuseStats, TermManager};

use crate::ts::TransitionSystem;
use crate::unroll::Unroller;
use crate::witness::{Frame, Witness};

/// How the checker explores depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BmcMode {
    /// One SAT query per depth on a single persistent [`IncrementalSolver`]:
    /// the unrolling is asserted once and grows monotonically, each depth's
    /// bad state rides along as a retractable assumption, and learnt clauses
    /// carry over between depths.  The first counterexample found is a
    /// shortest one.
    #[default]
    PerDepth,
    /// One SAT query per depth, each on a fresh scratch solver that
    /// re-encodes the whole unrolling prefix (the pre-incremental behavior,
    /// kept for differential testing and benchmarking against
    /// [`BmcMode::PerDepth`]).
    PerDepthScratch,
    /// A single SAT query at the maximum bound with the bad states of every
    /// depth disjoined.  Usually much faster when a counterexample exists;
    /// the returned witness is truncated to the earliest violating frame of
    /// the model that was found.  Note this does not guarantee a *globally*
    /// shortest counterexample — the solver returns an arbitrary model, and
    /// a different model may violate earlier; use [`BmcMode::PerDepth`] when
    /// minimal trace lengths matter.
    Cumulative,
}

/// Configuration of a BMC run.
#[derive(Debug, Clone, Copy)]
pub struct BmcConfig {
    /// Conflict budget per SAT call (`None` = unlimited).
    pub conflict_limit: Option<u64>,
    /// Wall-clock budget for the whole run (`None` = unlimited).  When the
    /// budget is exhausted the check returns [`BmcResult::Unknown`]; the
    /// budget also interrupts in-flight SAT calls (checked every few
    /// conflicts), so a run overshoots it only by a short burst.
    pub time_limit: Option<Duration>,
    /// First depth to check (0 checks the initial state itself).
    pub start_bound: usize,
    /// Depth-exploration strategy.
    pub mode: BmcMode,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            conflict_limit: None,
            time_limit: None,
            start_bound: 0,
            mode: BmcMode::PerDepth,
        }
    }
}

/// Statistics of a BMC run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BmcStats {
    /// Number of SAT queries issued.
    pub queries: u64,
    /// Total SAT conflicts over all queries.
    pub conflicts: u64,
    /// Total wall-clock time.
    pub duration: Duration,
    /// Deepest bound that was fully checked (or at which a counterexample was
    /// found).
    pub deepest_bound: usize,
    /// Solver-reuse counters (term encodings cached/reused, learnt clauses
    /// retained across depths).  All zero in [`BmcMode::PerDepthScratch`]
    /// and [`BmcMode::Cumulative`], which build fresh solvers.
    pub solver: SolverReuseStats,
}

/// Outcome of a BMC run.
#[derive(Debug, Clone)]
pub enum BmcResult {
    /// A counterexample reaching a bad state was found.
    Counterexample(Witness),
    /// No bad state is reachable within the bound.
    NoCounterexample {
        /// The bound that was exhaustively checked.
        bound: usize,
    },
    /// The resource budget ran out at the given bound.
    Unknown {
        /// The bound being checked when the budget ran out.
        bound: usize,
    },
}

impl BmcResult {
    /// Whether a counterexample was found.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, BmcResult::Counterexample(_))
    }

    /// The witness, if a counterexample was found.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            BmcResult::Counterexample(w) => Some(w),
            _ => None,
        }
    }
}

/// The bounded model checker.
#[derive(Debug, Clone, Default)]
pub struct Bmc {
    config: BmcConfig,
    stats: BmcStats,
}

impl Bmc {
    /// Creates a checker with the given configuration.
    pub fn new(config: BmcConfig) -> Self {
        Bmc {
            config,
            stats: BmcStats::default(),
        }
    }

    /// Statistics of the most recent [`check`](Self::check) call.
    pub fn stats(&self) -> BmcStats {
        self.stats
    }

    /// Checks whether any bad state of `ts` is reachable within `max_bound`
    /// transition steps, searching depth by depth so that the first
    /// counterexample found is a shortest one.
    pub fn check(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        match self.config.mode {
            BmcMode::PerDepth => self.check_per_depth(tm, ts, max_bound),
            BmcMode::PerDepthScratch => self.check_per_depth_scratch(tm, ts, max_bound),
            BmcMode::Cumulative => self.check_cumulative(tm, ts, max_bound),
        }
    }

    /// Per-depth exploration on one persistent incremental solver: the
    /// unrolling prefix is asserted exactly once (each depth adds only the
    /// new frame's transition and constraints), the depth's bad state is a
    /// retractable assumption, and all SAT-level learning carries over.
    fn check_per_depth(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);

        let mut solver = IncrementalSolver::new();
        solver.set_conflict_limit(self.config.conflict_limit);
        solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
        let init = unroller.init(tm);
        solver.assert_term(tm, init);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        // Transitions asserted so far: frames 0..frames_asserted.
        let mut frames_asserted = 0usize;

        for bound in self.config.start_bound..=max_bound {
            while frames_asserted < bound {
                let k = frames_asserted;
                let tr = unroller.transition(tm, k);
                solver.assert_term(tm, tr);
                let cs = unroller.constraints_at(tm, k + 1);
                solver.assert_term(tm, cs);
                frames_asserted += 1;
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() > limit {
                    self.stats.solver = solver.stats();
                    self.stats.duration = start.elapsed();
                    return BmcResult::Unknown { bound };
                }
            }
            let bad = unroller.bad_at(tm, bound);
            let result = solver.check_assuming(tm, &[bad]);
            self.stats.queries += 1;
            self.stats.conflicts = solver.stats().conflicts;
            self.stats.solver = solver.stats();
            self.stats.deepest_bound = bound;
            match result {
                SatResult::Sat => {
                    let witness = extract_witness(tm, ts, &mut unroller, solver.model(tm), bound);
                    self.stats.duration = start.elapsed();
                    return BmcResult::Counterexample(witness);
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    self.stats.duration = start.elapsed();
                    return BmcResult::Unknown { bound };
                }
            }
        }
        self.stats.duration = start.elapsed();
        BmcResult::NoCounterexample { bound: max_bound }
    }

    /// Per-depth exploration with a fresh scratch solver per depth — the
    /// pre-incremental code path, kept as the differential-testing and
    /// benchmarking baseline for [`Self::check_per_depth`].
    fn check_per_depth_scratch(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);

        // Path constraints accumulated across depths so that each depth only
        // adds the new frame's transition and constraints.
        let mut path: Vec<sepe_smt::TermId> = vec![unroller.init(tm)];
        path.push(unroller.constraints_at(tm, 0));

        for bound in self.config.start_bound..=max_bound {
            while path.len() < bound + 2 {
                // path[k+1] covers transition k->k+1 plus constraints at k+1
                let k = path.len() - 2;
                let tr = unroller.transition(tm, k);
                let cs = unroller.constraints_at(tm, k + 1);
                let both = tm.and(tr, cs);
                path.push(both);
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() > limit {
                    self.stats.duration = start.elapsed();
                    return BmcResult::Unknown { bound };
                }
            }
            let bad = unroller.bad_at(tm, bound);
            let mut solver = Solver::new();
            solver.set_conflict_limit(self.config.conflict_limit);
            solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
            for &p in path.iter().take(bound + 2) {
                solver.assert_term(tm, p);
            }
            solver.assert_term(tm, bad);
            let result = solver.check(tm);
            self.stats.queries += 1;
            self.stats.conflicts += solver.stats().conflicts;
            self.stats.deepest_bound = bound;
            match result {
                SatResult::Sat => {
                    let witness = extract_witness(tm, ts, &mut unroller, solver.model(tm), bound);
                    self.stats.duration = start.elapsed();
                    return BmcResult::Counterexample(witness);
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    self.stats.duration = start.elapsed();
                    return BmcResult::Unknown { bound };
                }
            }
        }
        self.stats.duration = start.elapsed();
        BmcResult::NoCounterexample { bound: max_bound }
    }

    fn check_cumulative(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);

        let mut solver = Solver::new();
        solver.set_conflict_limit(self.config.conflict_limit);
        solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
        let init = unroller.init(tm);
        solver.assert_term(tm, init);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        let mut bads = Vec::new();
        for k in 0..max_bound {
            let tr = unroller.transition(tm, k);
            solver.assert_term(tm, tr);
            let cs = unroller.constraints_at(tm, k + 1);
            solver.assert_term(tm, cs);
        }
        let mut any_bad = tm.fls();
        for k in self.config.start_bound..=max_bound {
            let bad = unroller.bad_at(tm, k);
            bads.push((k, bad));
            any_bad = tm.or(any_bad, bad);
        }
        solver.assert_term(tm, any_bad);
        let outcome = solver.check(tm);
        self.stats.queries = 1;
        self.stats.conflicts = solver.stats().conflicts;
        self.stats.deepest_bound = max_bound;
        let result = match outcome {
            SatResult::Sat => {
                let model = solver.model(tm).clone();
                // the earliest violated depth gives the counterexample length
                let violated = bads
                    .iter()
                    .find(|(_, bad)| model.eval(tm, *bad) == 1)
                    .map(|(k, _)| *k)
                    .unwrap_or(max_bound);
                self.stats.deepest_bound = violated;
                let witness = extract_witness(tm, ts, &mut unroller, &model, violated);
                BmcResult::Counterexample(witness)
            }
            SatResult::Unsat => BmcResult::NoCounterexample { bound: max_bound },
            SatResult::Unknown => BmcResult::Unknown { bound: max_bound },
        };
        self.stats.duration = start.elapsed();
        result
    }
}

fn extract_witness(
    tm: &mut TermManager,
    ts: &TransitionSystem,
    unroller: &mut Unroller<'_>,
    model: &Model,
    bound: usize,
) -> Witness {
    let mut frames = Vec::with_capacity(bound + 1);
    for k in 0..=bound {
        let mut frame = Frame::default();
        for sv in ts.state_vars() {
            let name = tm
                .var_name(sv.current)
                .expect("state vars are variables")
                .to_string();
            let at = unroller.var_at(tm, sv.current, k);
            frame.states.insert(name, model.eval(tm, at));
        }
        for &input in ts.inputs() {
            let name = tm
                .var_name(input)
                .expect("inputs are variables")
                .to_string();
            let at = unroller.var_at(tm, input, k);
            frame.inputs.insert(name, model.eval(tm, at));
        }
        frames.push(frame);
    }
    Witness::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::Sort;
    use std::collections::HashMap;

    /// Counter with symbolic increment input; bad state: counter == target.
    fn counter_system(
        tm: &mut TermManager,
        width: u32,
        target: u64,
        constrain_inc_to_one: bool,
    ) -> TransitionSystem {
        let c = tm.var("count", Sort::BitVec(width));
        let inc = tm.var("inc", Sort::BitVec(width));
        let next = tm.bv_add(c, inc);
        let zero = tm.zero(width);
        let tgt = tm.bv_const(target, width);
        let bad = tm.eq(c, tgt);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, c, Some(zero), next);
        ts.add_input(tm, inc);
        ts.add_bad(bad);
        if constrain_inc_to_one {
            let one = tm.one(width);
            let c1 = tm.eq(inc, one);
            ts.add_constraint(c1);
        }
        ts
    }

    #[test]
    fn finds_shortest_counterexample_with_free_inputs() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 200, false);
        let mut bmc = Bmc::new(BmcConfig::default());
        // with a free increment the counter can jump to 200 in one step
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => {
                assert_eq!(w.num_steps(), 1);
                assert_eq!(w.last().state("count"), 200);
                assert_eq!(w.frame(0).input("inc"), 200);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
        assert!(bmc.stats().queries >= 1);
    }

    #[test]
    fn respects_constraints_when_searching() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 5, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        // increments constrained to one: needs exactly 5 steps
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => {
                assert_eq!(w.num_steps(), 5);
                let counts: Vec<u64> = w.frames().iter().map(|f| f.state("count")).collect();
                assert_eq!(counts, vec![0, 1, 2, 3, 4, 5]);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn reports_no_counterexample_when_unreachable_within_bound() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 10),
            other => panic!("expected no counterexample, got {other:?}"),
        }
    }

    #[test]
    fn witness_replays_on_the_concrete_simulator() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 42, false);
        let mut bmc = Bmc::new(BmcConfig::default());
        let witness = match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => w,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        // replay the witness inputs through TransitionSystem::simulate
        let inc = tm.find_var("inc").expect("input exists");
        let count = tm.find_var("count").expect("state exists");
        let inputs: Vec<HashMap<_, _>> = witness.frames()[..witness.num_steps()]
            .iter()
            .map(|f| HashMap::from([(inc, f.input("inc"))]))
            .collect();
        let trace = ts.simulate(&tm, &inputs);
        assert_eq!(trace.last().expect("trace non-empty")[&count], 42);
    }

    #[test]
    fn zero_bound_checks_the_initial_state() {
        let mut tm = TermManager::new();
        // bad state: count == 0 (true initially)
        let ts = counter_system(&mut tm, 8, 0, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        match bmc.check(&mut tm, &ts, 4) {
            BmcResult::Counterexample(w) => assert_eq!(w.num_steps(), 0),
            other => panic!("expected an immediate counterexample, got {other:?}"),
        }
    }

    #[test]
    fn incremental_per_depth_matches_scratch_per_depth() {
        // Same systems, both verdict polarities, depth by depth.
        for (target, constrain) in [(5u64, true), (50, true), (200, false), (3, true)] {
            let mut tm = TermManager::new();
            let ts = counter_system(&mut tm, 8, target, constrain);
            let mut incremental = Bmc::new(BmcConfig::default());
            let inc_result = incremental.check(&mut tm, &ts, 8);
            let mut tm2 = TermManager::new();
            let ts2 = counter_system(&mut tm2, 8, target, constrain);
            let mut scratch = Bmc::new(BmcConfig {
                mode: BmcMode::PerDepthScratch,
                ..BmcConfig::default()
            });
            let scr_result = scratch.check(&mut tm2, &ts2, 8);
            match (&inc_result, &scr_result) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => {
                    assert_eq!(a, b);
                }
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
            assert_eq!(incremental.stats().queries, scratch.stats().queries);
        }
    }

    #[test]
    fn incremental_per_depth_reuses_encodings_across_depths() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true); // unreachable in 10 steps
        let mut bmc = Bmc::new(BmcConfig::default());
        let result = bmc.check(&mut tm, &ts, 10);
        assert!(matches!(result, BmcResult::NoCounterexample { .. }));
        let reuse = bmc.stats().solver;
        assert_eq!(reuse.checks, 11, "one check per depth 0..=10");
        assert!(
            reuse.terms_reused > 0,
            "later depths must hit the encoding cache"
        );
        assert!(reuse.terms_cached > 0);
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        let mut tm = TermManager::new();
        // a harder target at 16 bits with constrained increments of exactly 3
        let c = tm.var("count", Sort::BitVec(16));
        let inc = tm.var("inc", Sort::BitVec(16));
        let prod = tm.bv_mul(c, inc);
        let next = tm.bv_add(prod, inc);
        let one = tm.one(16);
        let tgt = tm.bv_const(0x8d2b, 16);
        let bad = tm.eq(c, tgt);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(one), next);
        ts.add_input(&tm, inc);
        ts.add_bad(bad);
        let mut bmc = Bmc::new(BmcConfig {
            conflict_limit: Some(1),
            ..BmcConfig::default()
        });
        let result = bmc.check(&mut tm, &ts, 6);
        assert!(
            matches!(
                result,
                BmcResult::Unknown { .. } | BmcResult::Counterexample(_)
            ),
            "tiny budgets either give up or get lucky, got {result:?}"
        );
    }
}
