//! Shared machinery of the unbounded provers: proof methods, certificates,
//! and the independent-solver proof self-check.
//!
//! A bounded model checker can only ever report "no bug within k steps"; the
//! provers in [`induction`](crate::induction) and [`pdr`](crate::pdr) close
//! the gap with a genuine `Proved` verdict.  Because a wrong "Proved" is the
//! worst answer this stack can give — it silently certifies a buggy design —
//! every proof carries a [`ProofCertificate`] that
//! [`verify_certificate`] re-checks on *fresh, independent* scratch
//! [`Solver`]s before the verdict is allowed to leave the engine.  This is
//! the proof-side twin of the witness-replay self-check: the prover's own
//! long-lived incremental solvers (with their learnt clauses, activation
//! literals and assumption plumbing) are deliberately not trusted to audit
//! themselves.
//!
//! The obligations re-checked per certificate:
//!
//! * [`ProofCertificate::Inductive`] (PDR) — for the invariant `inv`
//!   (a conjunction of frame clauses over the current-state variables):
//!   1. `init ⊨ inv` — the initial states are inside the invariant,
//!   2. `inv ∧ T ⊨ inv′` — the invariant is closed under one transition,
//!   3. `inv ⊨ ¬bad` — the invariant excludes every bad state.
//! * [`ProofCertificate::KInduction`] — re-runs the temporal-induction
//!   obligations at the recorded depth `k`: every base case
//!   `init ∧ path ∧ bad@i` for `i < k` must be unsatisfiable, and so must
//!   the step case `¬bad@0..k-1 ∧ path ∧ bad@k` (with the pairwise
//!   state-uniqueness constraints when the proof used them).
//!
//! Every obligation query runs without conflict or memory budgets: a
//! certificate is checked to completion or the check fails, never "probably
//! fine".  The systems involved are the same size the prover already
//! handled, so completion is not a practical concern.

use std::fmt;

use sepe_smt::{SatResult, Solver, TermId, TermManager};

use crate::ts::TransitionSystem;
use crate::unroll::Unroller;

/// Which unbounded prover produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProofMethod {
    /// Eén–Sörensson temporal induction (`induction.rs`).
    KInduction,
    /// Bradley-style IC3/PDR (`pdr.rs`).
    Pdr,
}

impl fmt::Display for ProofMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofMethod::KInduction => write!(f, "k-induction"),
            ProofMethod::Pdr => write!(f, "pdr"),
        }
    }
}

/// A checkable proof artefact, emitted alongside every `Proved` verdict.
#[derive(Debug, Clone)]
pub enum ProofCertificate {
    /// A 1-inductive invariant: the conjunction of `clauses` (terms over
    /// the *original* current-state variables) holds initially, is closed
    /// under the transition relation, and excludes the bad states.  An
    /// empty clause list is the trivial invariant `true` (the bad states
    /// are unreachable because no constrained state satisfies them).
    Inductive {
        /// The invariant's clauses over the unprimed state variables.
        clauses: Vec<TermId>,
    },
    /// A temporal-induction proof at depth `k`: all base cases below `k`
    /// and the `k`-step case are unsatisfiable.
    KInduction {
        /// The induction depth.
        depth: usize,
        /// First depth whose base case was checked (earlier depths are the
        /// caller's by-construction guarantee, exactly like
        /// [`BmcConfig::start_bound`](crate::BmcConfig::start_bound)).
        start_bound: usize,
        /// Whether the proof needed the pairwise path-uniqueness
        /// (simple-path) constraints; the re-check must then include them,
        /// since the plain step case is satisfiable.
        unique: bool,
    },
}

/// Why a certificate failed its independent re-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// `init ⊨ inv` failed: an initial state escapes the invariant.
    InitNotContained,
    /// `inv ∧ T ⊨ inv′` failed: the invariant is not closed under the
    /// transition relation.
    NotInductive,
    /// `inv ⊨ ¬bad` failed: the invariant admits a bad state.
    BadNotExcluded,
    /// A k-induction base case at the given depth was satisfiable.
    BaseCaseSat(usize),
    /// The k-induction step case was satisfiable.
    StepCaseSat,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::InitNotContained => {
                write!(f, "an initial state escapes the invariant")
            }
            CertificateError::NotInductive => {
                write!(
                    f,
                    "the invariant is not closed under the transition relation"
                )
            }
            CertificateError::BadNotExcluded => write!(f, "the invariant admits a bad state"),
            CertificateError::BaseCaseSat(k) => {
                write!(f, "the base case at depth {k} is satisfiable")
            }
            CertificateError::StepCaseSat => write!(f, "the step case is satisfiable"),
        }
    }
}

/// Work counters of one prover run, in the same spirit as
/// [`BmcStats`](crate::BmcStats) but with the prover-specific shape: frame
/// and cube counters are zero for k-induction, uniqueness counters zero for
/// PDR.
#[derive(Debug, Clone, Default)]
pub struct ProveStats {
    /// SAT queries issued across all of the run's solvers.
    pub queries: u64,
    /// SAT conflicts across all of the run's solvers.
    pub conflicts: u64,
    /// Total wall-clock time.
    pub duration: std::time::Duration,
    /// Deepest induction depth / highest PDR frontier frame reached.
    pub depth_reached: usize,
    /// Pairwise path-uniqueness constraints asserted (k-induction only).
    pub uniqueness_constraints: u64,
    /// Cubes blocked by a frame clause (PDR only).
    pub cubes_blocked: u64,
    /// Clause-literal drops won from unsat cores during generalisation
    /// (PDR only).
    pub literals_dropped: u64,
    /// Frame clauses pushed forward to a later frame (PDR only).
    pub clauses_pushed: u64,
    /// Reuse counters of the run's primary incremental solver (the step
    /// solver for k-induction, the frame solver for PDR).
    pub solver: sepe_smt::SolverReuseStats,
}

/// One prover run's outcome: the familiar [`BmcResult`](crate::BmcResult)
/// (now carrying [`BmcResult::Proved`](crate::BmcResult::Proved)), the
/// certificate backing a proof, and the work counters.
#[derive(Debug, Clone)]
pub struct ProofRun {
    /// The verdict.
    pub result: crate::BmcResult,
    /// The checkable proof artefact; `Some` exactly when `result` is
    /// [`BmcResult::Proved`](crate::BmcResult::Proved).
    pub certificate: Option<ProofCertificate>,
    /// Work counters.
    pub stats: ProveStats,
}

/// Returns a fresh scratch solver for one certificate obligation: word-level
/// rewriting and the AIG layer on (both equisatisfiability-preserving), no
/// budgets — an obligation is checked to completion or not at all.
fn obligation_solver() -> Solver {
    Solver::new()
}

/// Asserts `terms` and reports whether the conjunction is satisfiable.
fn sat(tm: &mut TermManager, terms: &[TermId]) -> bool {
    let mut solver = obligation_solver();
    for &t in terms {
        solver.assert_term(tm, t);
    }
    solver.check(tm) == SatResult::Sat
}

/// Re-validates a certificate against the transition system on fresh
/// independent solvers; `Ok(())` confirms every obligation.
///
/// The prover that produced the certificate shares nothing with this check
/// but the term manager: each obligation gets its own scratch [`Solver`],
/// its own bit-blasting, its own SAT state.
pub fn verify_certificate(
    tm: &mut TermManager,
    ts: &TransitionSystem,
    certificate: &ProofCertificate,
) -> Result<(), CertificateError> {
    match certificate {
        ProofCertificate::Inductive { clauses } => {
            let mut unroller = Unroller::new(ts);
            let inv0 = {
                let at0: Vec<TermId> = clauses
                    .iter()
                    .map(|&c| unroller.term_at(tm, c, 0))
                    .collect();
                tm.and_many(at0)
            };
            let inv1 = {
                let at1: Vec<TermId> = clauses
                    .iter()
                    .map(|&c| unroller.term_at(tm, c, 1))
                    .collect();
                tm.and_many(at1)
            };
            let init = unroller.init(tm);
            let c0 = unroller.constraints_at(tm, 0);
            let c1 = unroller.constraints_at(tm, 1);
            let t01 = unroller.transition(tm, 0);
            let bad0 = unroller.bad_at(tm, 0);

            // 1. init ⊨ inv: init ∧ ¬inv must be unsatisfiable.
            let not_inv0 = tm.not(inv0);
            if sat(tm, &[init, c0, not_inv0]) {
                return Err(CertificateError::InitNotContained);
            }
            // 2. inv ∧ T ⊨ inv′: inv ∧ T ∧ ¬inv′ must be unsatisfiable.
            let not_inv1 = tm.not(inv1);
            if sat(tm, &[inv0, c0, c1, t01, not_inv1]) {
                return Err(CertificateError::NotInductive);
            }
            // 3. inv ⊨ ¬bad: inv ∧ bad must be unsatisfiable.
            if sat(tm, &[inv0, c0, bad0]) {
                return Err(CertificateError::BadNotExcluded);
            }
            Ok(())
        }
        ProofCertificate::KInduction {
            depth,
            start_bound,
            unique,
        } => {
            let k = *depth;
            // Base cases: init ∧ path ∧ bad@i unsatisfiable for each
            // checked depth below k.
            {
                let mut unroller = Unroller::new(ts);
                let mut path = vec![unroller.init(tm)];
                for i in 0..=k.saturating_sub(1) {
                    let c = unroller.constraints_at(tm, i);
                    path.push(c);
                    if i < k.saturating_sub(1) {
                        let t = unroller.transition(tm, i);
                        path.push(t);
                    }
                }
                for i in *start_bound..k {
                    let bad = unroller.bad_at(tm, i);
                    let mut terms = path.clone();
                    terms.push(bad);
                    if sat(tm, &terms) {
                        return Err(CertificateError::BaseCaseSat(i));
                    }
                }
            }
            // Step case: an init-free path of k transitions with ¬bad on
            // every frame but the last, bad on the last — plus the
            // pairwise state-uniqueness constraints when the proof used
            // them — must be unsatisfiable.  Depth 0 degenerates to
            // "bad@0 alone is unsatisfiable" (no transition, no
            // hypothesis): only a system whose constraints exclude bad
            // outright passes it, which is exactly what a depth-0 claim
            // asserts.
            let mut unroller = Unroller::new(ts);
            let mut terms = Vec::new();
            for i in 0..=k {
                let c = unroller.constraints_at(tm, i);
                terms.push(c);
                if i < k {
                    let t = unroller.transition(tm, i);
                    terms.push(t);
                    let bad = unroller.bad_at(tm, i);
                    let not_bad = tm.not(bad);
                    terms.push(not_bad);
                }
            }
            if *unique {
                for t in uniqueness_constraints(tm, ts, &mut unroller, k) {
                    terms.push(t);
                }
            }
            let bad_k = unroller.bad_at(tm, k);
            terms.push(bad_k);
            if sat(tm, &terms) {
                return Err(CertificateError::StepCaseSat);
            }
            Ok(())
        }
    }
}

/// The pairwise simple-path constraints over frames `0..=k`: for every pair
/// of frames, at least one state variable differs.  Systems with no state
/// variables get no constraints (every "path" trivially revisits the empty
/// state, and the step case at depth 1 already decides them).
pub(crate) fn uniqueness_constraints(
    tm: &mut TermManager,
    ts: &TransitionSystem,
    unroller: &mut Unroller<'_>,
    k: usize,
) -> Vec<TermId> {
    let vars: Vec<TermId> = ts.state_vars().iter().map(|v| v.current).collect();
    if vars.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..k {
        for j in (i + 1)..=k {
            let diffs: Vec<TermId> = vars
                .iter()
                .map(|&v| {
                    let vi = unroller.var_at(tm, v, i);
                    let vj = unroller.var_at(tm, v, j);
                    tm.neq(vi, vj)
                })
                .collect();
            out.push(tm.or_many(diffs));
        }
    }
    out
}

/// Deterministically corrupts a certificate (fault injection for the
/// detection layer's `corrupt_proof` hook): the result claims an invariant
/// no constrained system satisfies, so [`verify_certificate`] must fail on
/// the very first obligation.  The proof-side twin of
/// `selfcheck::corrupt_witness`.
pub fn corrupt_certificate(
    tm: &mut TermManager,
    _certificate: &ProofCertificate,
) -> ProofCertificate {
    ProofCertificate::Inductive {
        clauses: vec![tm.fls()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BmcResult;
    use sepe_smt::Sort;

    /// A two-bit counter that wraps at 3 (never reaches 3 when it resets
    /// from 2): bad = (count == 3) is unreachable and 1-inductive with the
    /// invariant count != 3.
    fn capped_counter(tm: &mut TermManager) -> TransitionSystem {
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let two = tm.bv_const(2, 2);
        let three = tm.bv_const(3, 2);
        let at_two = tm.eq(count, two);
        let inc = tm.bv_add(count, one);
        let next = tm.ite(at_two, zero, inc);
        let bad = tm.eq(count, three);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, count, Some(zero), next);
        ts.add_bad(bad);
        ts
    }

    #[test]
    fn a_correct_inductive_certificate_verifies() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let count = tm.find_var("count").unwrap();
        let three = tm.bv_const(3, 2);
        let not_three = tm.neq(count, three);
        let cert = ProofCertificate::Inductive {
            clauses: vec![not_three],
        };
        assert_eq!(verify_certificate(&mut tm, &ts, &cert), Ok(()));
    }

    #[test]
    fn a_non_inductive_invariant_is_rejected() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let count = tm.find_var("count").unwrap();
        // count == 0 holds initially and excludes bad, but one step leaves it.
        let zero = tm.zero(2);
        let at_zero = tm.eq(count, zero);
        let cert = ProofCertificate::Inductive {
            clauses: vec![at_zero],
        };
        assert_eq!(
            verify_certificate(&mut tm, &ts, &cert),
            Err(CertificateError::NotInductive)
        );
    }

    #[test]
    fn an_invariant_admitting_bad_is_rejected() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let tru = tm.tru();
        let cert = ProofCertificate::Inductive { clauses: vec![tru] };
        assert_eq!(
            verify_certificate(&mut tm, &ts, &cert),
            Err(CertificateError::BadNotExcluded)
        );
    }

    #[test]
    fn a_corrupted_certificate_fails_the_first_obligation() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let count = tm.find_var("count").unwrap();
        let three = tm.bv_const(3, 2);
        let not_three = tm.neq(count, three);
        let good = ProofCertificate::Inductive {
            clauses: vec![not_three],
        };
        assert_eq!(verify_certificate(&mut tm, &ts, &good), Ok(()));
        let bad = corrupt_certificate(&mut tm, &good);
        assert_eq!(
            verify_certificate(&mut tm, &ts, &bad),
            Err(CertificateError::InitNotContained)
        );
    }

    #[test]
    fn proof_run_shape_is_consistent() {
        let run = ProofRun {
            result: BmcResult::Proved {
                method: ProofMethod::Pdr,
                depth: 2,
            },
            certificate: Some(ProofCertificate::Inductive { clauses: vec![] }),
            stats: ProveStats::default(),
        };
        assert!(run.result.is_proved());
        assert!(run.certificate.is_some());
        assert_eq!(ProofMethod::Pdr.to_string(), "pdr");
        assert_eq!(ProofMethod::KInduction.to_string(), "k-induction");
    }
}
