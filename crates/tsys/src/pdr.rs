//! Bradley-style IC3/PDR over the incremental stack.
//!
//! One persistent [`IncrementalSolver`] carries a **two-frame** unrolling —
//! `T(0→1)` with the frame constraints of both copies — and every
//! frame-wise reachability query rides on retractable assumptions:
//!
//! * the initial states are asserted under an `init` **activation literal**,
//!   so `F_0 = init` queries assume it and relative-induction queries leave
//!   it retracted;
//! * a frame clause learned at level `l` is asserted as
//!   `act_l → clause@0`; querying `F_j` assumes `act_l` for every `l ≥ j`,
//!   which makes the frame-monotonicity `F_{j+1} ⊆ F_j` a property of the
//!   assumption set instead of a copying discipline.  *Pushing* a clause to
//!   the next frame just re-asserts it under the next level's literal — the
//!   old guarded copy stays valid because the clause also still holds in
//!   every earlier frame.
//!
//! A satisfiable frontier query `F_N ∧ bad` yields a **cube** (the
//! conjunction of the model's state-variable values) and a proof obligation
//! at level `N`.  Blocking an obligation `(s, k)` asks the relative
//! induction query `F_{k-1} ∧ ¬s ∧ T ∧ s′` with the primed cube passed as
//! *individual* assumptions: on UNSAT, [`IncrementalSolver::core_subset`]
//! says which literals the final conflict actually used, and the rest are
//! dropped from the learned clause — unsat-core cube **generalisation** for
//! the price of a filter.  A generalised cube is re-checked against the
//! initial states (a dropped literal may have been what excluded them) and
//! falls back to the ungeneralised cube if it now intersects.
//!
//! The frames converge when some level `i < N` holds no clause of exactly
//! level `i` — then `F_i = F_{i+1}`, and the conjunction of the clauses at
//! level `≥ i` is a 1-inductive invariant.  It ships as a
//! [`ProofCertificate::Inductive`] for the independent self-check.
//!
//! On falsification PDR does **not** reconstruct the trace from its
//! obligation chain (generalised frames make that fragile); it re-runs the
//! bounded checker at the discovered depth and returns *its* witness — the
//! reference path, shortest-first, already wired for witness replay.
//!
//! Cone-of-influence reduction is disabled throughout: cubes range over
//! *all* state variables, and a variable whose next-state update the cone
//! pass dropped would float unconstrained inside them.  Word-level
//! rewriting and the AIG layer stay on (equisatisfiability-preserving).

use std::time::Instant;

use sepe_smt::{IncrementalSolver, SatResult, Sort, StopReason, TermId, TermManager};

use crate::bmc::{Bmc, BmcConfig, BmcMode, BmcResult};
use crate::prove::{ProofCertificate, ProofMethod, ProofRun, ProveStats};
use crate::ts::TransitionSystem;
use crate::unroll::Unroller;

/// One cube literal: a state variable pinned to a model value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CubeLit {
    /// The original (unprimed) state variable.
    var: TermId,
    /// Its value in the model.
    value: u64,
}

/// A conjunction of [`CubeLit`]s — a (possibly generalised) state cube.
type Cube = Vec<CubeLit>;

/// A frame clause: the negation of a blocked cube, tracked at the highest
/// frame level it is known to hold relative to.
#[derive(Debug, Clone)]
struct FrameClause {
    /// The blocked cube (over original state variables).
    cube: Cube,
    /// The clause `¬cube` as a term over the original state variables.
    clause: TermId,
    /// Highest level the clause belongs to: it holds in `F_j` for every
    /// `j ≤ level`.
    level: usize,
}

/// The IC3/PDR prover.  Reuses [`BmcConfig`] wholesale (budgets,
/// cancellation, preprocessing toggles, fault plan); `mode`,
/// `frame_rescore` and the cone-of-influence half of `simplify` are
/// ignored.
#[derive(Debug, Clone, Default)]
pub struct Pdr {
    config: BmcConfig,
}

/// Internal signal that a run must stop without a verdict.
struct Interrupted(StopReason);

impl Pdr {
    /// Creates a prover with the given configuration.
    pub fn new(config: BmcConfig) -> Self {
        Pdr { config }
    }

    /// Runs the frame loop up to frontier `max_frames`.
    ///
    /// Outcomes mirror [`KInduction::check`](crate::KInduction::check):
    /// [`BmcResult::Counterexample`] with a reference-BMC witness,
    /// [`BmcResult::Proved`] with an inductive-invariant certificate,
    /// [`BmcResult::NoCounterexample`] when the frontier cap passes without
    /// convergence (still a sound bounded verdict: `F_N ⊨ ¬bad` was
    /// established for every opened frontier), [`BmcResult::Unknown`] on a
    /// budget or fault.  `config.start_bound ≥ 1` skips the depth-0
    /// `init ∧ bad` check, mirroring the bounded modes.
    pub fn check(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_frames: usize,
    ) -> ProofRun {
        let mut engine = PdrEngine::open(tm, ts, &self.config);
        let started = engine.started;
        match engine.run(tm, max_frames) {
            Ok(result) => {
                let certificate = match &result {
                    BmcResult::Proved { .. } => Some(ProofCertificate::Inductive {
                        clauses: engine.invariant_clauses(),
                    }),
                    _ => None,
                };
                let mut stats = engine.stats();
                stats.duration = started.elapsed();
                ProofRun {
                    result,
                    certificate,
                    stats,
                }
            }
            Err(Interrupted(reason)) => {
                let mut stats = engine.stats();
                stats.duration = started.elapsed();
                ProofRun {
                    result: BmcResult::Unknown {
                        bound: engine.frontier,
                        reason,
                    },
                    certificate: None,
                    stats,
                }
            }
        }
    }
}

/// The live state of one PDR run.
struct PdrEngine<'ts> {
    ts: &'ts TransitionSystem,
    config: BmcConfig,
    solver: IncrementalSolver,
    unroller: Unroller<'ts>,
    /// Activation literal guarding the initial-state assertion.
    init_act: TermId,
    not_init_act: TermId,
    /// Per-level clause activation literals (index 0 unused).
    level_acts: Vec<TermId>,
    clauses: Vec<FrameClause>,
    frontier: usize,
    /// Level of the invariant when the frames converged.
    converged_at: Option<usize>,
    started: Instant,
    queries: u64,
    cubes_blocked: u64,
    literals_dropped: u64,
    clauses_pushed: u64,
}

impl<'ts> PdrEngine<'ts> {
    fn open(tm: &mut TermManager, ts: &'ts TransitionSystem, config: &BmcConfig) -> Self {
        let started = Instant::now();
        let mut solver = IncrementalSolver::new();
        solver.set_aig(config.aig);
        solver.set_simplify(config.simplify);
        solver.set_conflict_limit(config.conflict_limit);
        solver.set_deadline(config.time_limit.map(|limit| started + limit));
        solver.set_cancel_flags(config.cancel.clone());
        solver.set_memory_limit(config.memory_limit);
        if !config.fault.sat.is_empty() {
            solver.set_fault_hooks(config.fault.sat);
        }
        let mut unroller = Unroller::new(ts);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        let c1 = unroller.constraints_at(tm, 1);
        solver.assert_term(tm, c1);
        let t01 = unroller.transition(tm, 0);
        solver.assert_term(tm, t01);
        let init_act = tm.fresh_var("pdr_init_act", Sort::Bool);
        let init = unroller.init(tm);
        let guarded = tm.implies(init_act, init);
        solver.assert_term(tm, guarded);
        let not_init_act = tm.not(init_act);
        PdrEngine {
            ts,
            config: config.clone(),
            solver,
            unroller,
            init_act,
            not_init_act,
            level_acts: Vec::new(),
            clauses: Vec::new(),
            frontier: 0,
            converged_at: None,
            started,
            queries: 0,
            cubes_blocked: 0,
            literals_dropped: 0,
            clauses_pushed: 0,
        }
    }

    fn stats(&self) -> ProveStats {
        let solver = self.solver.stats();
        ProveStats {
            queries: self.queries,
            conflicts: solver.conflicts,
            duration: self.started.elapsed(),
            depth_reached: self.frontier,
            uniqueness_constraints: 0,
            cubes_blocked: self.cubes_blocked,
            literals_dropped: self.literals_dropped,
            clauses_pushed: self.clauses_pushed,
            solver,
        }
    }

    /// The converged invariant's clauses over the original state variables.
    fn invariant_clauses(&self) -> Vec<TermId> {
        let at = self.converged_at.unwrap_or(usize::MAX);
        self.clauses
            .iter()
            .filter(|c| c.level >= at)
            .map(|c| c.clause)
            .collect()
    }

    /// The activation literal of `level`, created on first use.
    fn act(&mut self, tm: &mut TermManager, level: usize) -> TermId {
        while self.level_acts.len() <= level {
            let idx = self.level_acts.len();
            self.level_acts
                .push(tm.fresh_var(&format!("pdr_act_l{idx}"), Sort::Bool));
        }
        self.level_acts[level]
    }

    /// Assumption set selecting frame `m`: `F_0` is the initial states,
    /// `F_m` (m ≥ 1) is every clause of level ≥ m.
    fn frame_assumptions(&mut self, tm: &mut TermManager, m: usize) -> Vec<TermId> {
        if m == 0 {
            return vec![self.init_act];
        }
        let top = self.level_acts.len().saturating_sub(1).max(m);
        let mut assumptions = vec![self.not_init_act];
        for level in m..=top {
            let a = self.act(tm, level);
            assumptions.push(a);
        }
        assumptions
    }

    /// One `check_assuming` with budget classification.  The wall budget is
    /// re-polled out here too: PDR issues thousands of individually cheap
    /// queries, so the solver-side deadline (checked during search) alone
    /// would let a run overshoot by the full obligation cascade.
    fn query(
        &mut self,
        tm: &mut TermManager,
        assumptions: &[TermId],
    ) -> Result<SatResult, Interrupted> {
        if let Some(limit) = self.config.time_limit {
            if self.started.elapsed() >= limit {
                return Err(Interrupted(StopReason::Deadline));
            }
        }
        let result = self.solver.check_assuming(tm, assumptions);
        self.queries += 1;
        if result == SatResult::Unknown {
            let reason = self
                .solver
                .stop_reason()
                .unwrap_or(StopReason::ConflictBudget);
            return Err(Interrupted(reason));
        }
        Ok(result)
    }

    /// Extracts the full state cube of the model's frame 0.
    fn model_cube(&mut self, tm: &mut TermManager) -> Cube {
        let vars: Vec<TermId> = self.ts.state_vars().iter().map(|v| v.current).collect();
        let mut cube = Vec::with_capacity(vars.len());
        for var in vars {
            let at0 = self.unroller.var_at(tm, var, 0);
            let value = self.solver.model(tm).value(at0);
            cube.push(CubeLit { var, value });
        }
        cube
    }

    /// The cube's literal as a term at frame `k`.
    fn lit_at(&mut self, tm: &mut TermManager, lit: CubeLit, k: usize) -> TermId {
        let at = self.unroller.var_at(tm, lit.var, k);
        let value = match tm.sort(lit.var) {
            Sort::Bool => tm.bool_const(lit.value != 0),
            Sort::BitVec(w) => tm.bv_const(lit.value, w),
        };
        tm.eq(at, value)
    }

    /// `¬cube` at frame 0: at least one literal differs.
    fn negated_cube_at0(&mut self, tm: &mut TermManager, cube: &Cube) -> TermId {
        let lits: Vec<TermId> = cube
            .iter()
            .map(|&lit| {
                let eq = self.lit_at(tm, lit, 0);
                tm.not(eq)
            })
            .collect();
        tm.or_many(lits)
    }

    /// The clause `¬cube` over the *original* state variables (certificate
    /// currency).
    fn clause_term(&mut self, tm: &mut TermManager, cube: &Cube) -> TermId {
        let lits: Vec<TermId> = cube
            .iter()
            .map(|lit| {
                let value = match tm.sort(lit.var) {
                    Sort::Bool => tm.bool_const(lit.value != 0),
                    Sort::BitVec(w) => tm.bv_const(lit.value, w),
                };
                tm.neq(lit.var, value)
            })
            .collect();
        tm.or_many(lits)
    }

    /// Whether the cube intersects the initial states.
    fn intersects_init(&mut self, tm: &mut TermManager, cube: &Cube) -> Result<bool, Interrupted> {
        let mut assumptions = vec![self.init_act];
        for &lit in cube {
            let t = self.lit_at(tm, lit, 0);
            assumptions.push(t);
        }
        Ok(self.query(tm, &assumptions)? == SatResult::Sat)
    }

    /// Records `¬cube` as a frame clause at `level` and asserts its guarded
    /// frame-0 copy.
    fn add_clause(&mut self, tm: &mut TermManager, cube: Cube, level: usize) {
        let clause = self.clause_term(tm, &cube);
        let at0 = self.unroller.term_at(tm, clause, 0);
        let act = self.act(tm, level);
        let guarded = tm.implies(act, at0);
        self.solver.assert_term(tm, guarded);
        self.clauses.push(FrameClause {
            cube,
            clause,
            level,
        });
        self.cubes_blocked += 1;
    }

    /// Handles the obligation queue rooted at one frontier counterexample
    /// cube; `Ok(Some(steps))` means a real counterexample was traced to
    /// the initial states, with `steps` transitions between the initial
    /// cube and the bad state.  Each obligation carries its exact
    /// distance-to-bad: re-enqueued cubes keep chasing the frontier at the
    /// same distance, so a chain can be *longer* than the frontier and the
    /// frontier alone would under-report the trace depth.
    fn block_obligations(
        &mut self,
        tm: &mut TermManager,
        root: Cube,
        root_level: usize,
    ) -> Result<Option<usize>, Interrupted> {
        // (cube, level, transitions from the cube to the bad state)
        let mut obligations: Vec<(Cube, usize, usize)> = vec![(root, root_level, 0)];
        while !obligations.is_empty() {
            // Lowest level first: counterexamples surface at the initial
            // states as early as possible.
            let idx = obligations
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, k, _))| *k)
                .map(|(i, _)| i)
                .expect("queue is non-empty");
            let (cube, k, dist) = obligations.swap_remove(idx);
            // An obligation cube that contains an initial state is a real
            // counterexample: the obligation chain connects it to bad.
            if self.intersects_init(tm, &cube)? {
                return Ok(Some(dist));
            }
            if k == 0 {
                // Cannot happen with the init check above (a level-0
                // predecessor was extracted under the init assumption),
                // but a queue entry at 0 is by definition traced to init.
                return Ok(Some(dist));
            }
            // Relative induction: F_{k-1} ∧ ¬cube ∧ T ∧ cube′, the primed
            // literals passed individually for core-based generalisation.
            let mut assumptions = self.frame_assumptions(tm, k - 1);
            let ncube = self.negated_cube_at0(tm, &cube);
            assumptions.push(ncube);
            let primed: Vec<TermId> = cube.iter().map(|&lit| self.lit_at(tm, lit, 1)).collect();
            assumptions.extend(&primed);
            match self.query(tm, &assumptions)? {
                SatResult::Unsat => {
                    // Generalise: keep only the literals the final conflict
                    // used, unless the shrunken cube drifts into init.
                    let core = self.solver.core_subset(&primed);
                    let mut general: Cube = cube
                        .iter()
                        .zip(&primed)
                        .filter(|(_, p)| core.contains(p))
                        .map(|(&lit, _)| lit)
                        .collect();
                    if general.is_empty() || self.intersects_init(tm, &general)? {
                        general = cube.clone();
                    }
                    self.literals_dropped += (cube.len() - general.len()) as u64;
                    self.add_clause(tm, general, k);
                    // Re-enqueue one frame later: re-blocking the same cube
                    // at k+1 is how obligations chase the frontier and how
                    // clauses end up high enough to converge.
                    if k < self.frontier {
                        obligations.push((cube, k + 1, dist));
                    }
                }
                SatResult::Sat => {
                    let predecessor = self.model_cube(tm);
                    obligations.push((predecessor, k - 1, dist + 1));
                    obligations.push((cube, k, dist));
                }
                SatResult::Unknown => unreachable!("query classifies Unknown"),
            }
        }
        Ok(None)
    }

    /// Pushes every clause that is inductive relative to its own level one
    /// frame forward; reports whether some level `i < frontier` emptied
    /// (frame convergence).
    fn push_clauses(&mut self, tm: &mut TermManager) -> Result<Option<usize>, Interrupted> {
        for level in 1..self.frontier {
            let candidates: Vec<usize> = (0..self.clauses.len())
                .filter(|&i| self.clauses[i].level == level)
                .collect();
            for i in candidates {
                let cube = self.clauses[i].cube.clone();
                // F_level ∧ T ∧ cube′ unsat ⇒ ¬cube also holds in
                // F_{level+1}.
                let mut assumptions = self.frame_assumptions(tm, level);
                let primed: Vec<TermId> = cube.iter().map(|&lit| self.lit_at(tm, lit, 1)).collect();
                assumptions.extend(&primed);
                if self.query(tm, &assumptions)? == SatResult::Unsat {
                    let clause = self.clauses[i].clause;
                    let at0 = self.unroller.term_at(tm, clause, 0);
                    let act = self.act(tm, level + 1);
                    let guarded = tm.implies(act, at0);
                    self.solver.assert_term(tm, guarded);
                    self.clauses[i].level = level + 1;
                    self.clauses_pushed += 1;
                }
            }
        }
        for level in 1..self.frontier {
            if !self.clauses.iter().any(|c| c.level == level) {
                return Ok(Some(level));
            }
        }
        Ok(None)
    }

    fn run(&mut self, tm: &mut TermManager, max_frames: usize) -> Result<BmcResult, Interrupted> {
        // Depth-0 base: init ∧ bad (skipped when start_bound ≥ 1, exactly
        // like the bounded modes' by-construction guarantee).
        if self.config.start_bound == 0 {
            let bad0 = self.unroller.bad_at(tm, 0);
            let assumptions = [self.init_act, bad0];
            if self.query(tm, &assumptions)? == SatResult::Sat {
                return self.confirmed_counterexample(tm, 0);
            }
        }
        for frontier in 1..=max_frames {
            self.frontier = frontier;
            if self.config.fault.cancel_at_depth == Some(frontier) {
                return Err(Interrupted(StopReason::Cancelled));
            }
            // Block every bad state out of the frontier frame.
            loop {
                let bad0 = self.unroller.bad_at(tm, 0);
                let mut assumptions = self.frame_assumptions(tm, frontier);
                assumptions.push(bad0);
                if self.query(tm, &assumptions)? == SatResult::Unsat {
                    break;
                }
                let cube = self.model_cube(tm);
                if let Some(steps) = self.block_obligations(tm, cube, frontier)? {
                    return self.confirmed_counterexample(tm, steps);
                }
            }
            if let Some(level) = self.push_clauses(tm)? {
                self.converged_at = Some(level);
                return Ok(BmcResult::Proved {
                    method: ProofMethod::Pdr,
                    depth: frontier,
                });
            }
        }
        Ok(BmcResult::NoCounterexample { bound: max_frames })
    }

    /// Re-derives a falsification through the bounded reference checker so
    /// the returned witness is a genuine shortest-first BMC trace (PDR's
    /// own obligation chain is generalised away from concrete inputs).
    fn confirmed_counterexample(
        &mut self,
        tm: &mut TermManager,
        depth_hint: usize,
    ) -> Result<BmcResult, Interrupted> {
        let config = BmcConfig {
            mode: BmcMode::PerDepth,
            frame_rescore: None,
            ..self.config.clone()
        };
        let mut bmc = Bmc::new(config);
        match bmc.check(tm, self.ts, depth_hint) {
            BmcResult::Counterexample(witness) => Ok(BmcResult::Counterexample(witness)),
            BmcResult::Unknown { reason, .. } => Err(Interrupted(reason)),
            // The frames said "reachable", the reference checker says "not
            // within the hinted depth": a structured disagreement, the
            // falsification-side analogue of a failed certificate check.
            _ => Err(Interrupted(StopReason::ProofMismatch)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::verify_certificate;

    fn capped_counter(tm: &mut TermManager) -> TransitionSystem {
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let two = tm.bv_const(2, 2);
        let three = tm.bv_const(3, 2);
        let at_two = tm.eq(count, two);
        let inc = tm.bv_add(count, one);
        let next = tm.ite(at_two, zero, inc);
        let bad = tm.eq(count, three);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, count, Some(zero), next);
        ts.add_bad(bad);
        ts
    }

    fn free_counter(tm: &mut TermManager) -> TransitionSystem {
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let three = tm.bv_const(3, 2);
        let next = tm.bv_add(count, one);
        let bad = tm.eq(count, three);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, count, Some(zero), next);
        ts.add_bad(bad);
        ts
    }

    #[test]
    fn proves_the_capped_counter_with_a_verifying_invariant() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let run = Pdr::new(BmcConfig::default()).check(&mut tm, &ts, 16);
        let BmcResult::Proved { method, .. } = run.result else {
            panic!("expected a proof, got {:?}", run.result);
        };
        assert_eq!(method, ProofMethod::Pdr);
        assert!(run.stats.cubes_blocked > 0, "the proof blocked some cube");
        let cert = run.certificate.expect("proof carries a certificate");
        assert_eq!(verify_certificate(&mut tm, &ts, &cert), Ok(()));
    }

    #[test]
    fn falsifies_the_free_counter_with_a_reference_witness() {
        let mut tm = TermManager::new();
        let ts = free_counter(&mut tm);
        let run = Pdr::new(BmcConfig::default()).check(&mut tm, &ts, 16);
        let BmcResult::Counterexample(w) = run.result else {
            panic!("expected a counterexample, got {:?}", run.result);
        };
        assert_eq!(w.num_steps(), 3, "0 → 1 → 2 → 3, shortest-first");
    }

    #[test]
    fn depth_zero_falsification_is_found() {
        // init already violates the property.
        let mut tm = TermManager::new();
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let next = tm.bv_add(count, one);
        let bad = tm.eq(count, zero);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, count, Some(zero), next);
        ts.add_bad(bad);
        let run = Pdr::new(BmcConfig::default()).check(&mut tm, &ts, 8);
        let BmcResult::Counterexample(w) = run.result else {
            panic!("expected a depth-0 counterexample, got {:?}", run.result);
        };
        assert_eq!(w.num_steps(), 0);
    }

    #[test]
    fn frame_cap_reports_the_bounded_verdict() {
        // Convergence needs a level strictly below the frontier, so a cap
        // of one frame can never close a proof: a safe system must come
        // back with the bounded verdict.
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let run = Pdr::new(BmcConfig::default()).check(&mut tm, &ts, 1);
        assert!(
            matches!(run.result, BmcResult::NoCounterexample { bound: 1 }),
            "got {:?}",
            run.result
        );
    }

    #[test]
    fn injected_cancellation_stops_cleanly() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let config = BmcConfig {
            fault: crate::BmcFaultPlan {
                cancel_at_depth: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let run = Pdr::new(config).check(&mut tm, &ts, 8);
        assert!(
            matches!(
                run.result,
                BmcResult::Unknown {
                    reason: StopReason::Cancelled,
                    ..
                }
            ),
            "got {:?}",
            run.result
        );
    }
}
