//! Eén–Sörensson temporal induction (k-induction) on the incremental stack.
//!
//! Two persistent [`IncrementalSolver`]s run in lock-step, one per proof
//! obligation, each extending its own unrolling append-only exactly like a
//! [`BmcSession`]:
//!
//! * the **base** solver carries `init ∧ T(0..k)` and answers
//!   `bad@k` as a retractable assumption — plain per-depth BMC, so a
//!   falsified property comes back with a genuine shortest-first
//!   [`Witness`](crate::Witness);
//! * the **step** solver carries an *init-free* unrolling
//!   `T(0..k) ∧ ¬bad@0 ∧ … ∧ ¬bad@k-1` (the `¬bad` frames asserted
//!   permanently as `k` grows — they are monotone) and answers `bad@k` as a
//!   retractable assumption.  An unsatisfiable step case at depth `k`,
//!   together with the base cases below `k`, proves the bad states
//!   unreachable at **every** depth.
//!
//! Plain k-induction is incomplete: a step case can stay satisfiable
//! forever by looping through the same states.  The classic fix is the
//! *simple-path* (path-uniqueness) strengthening — assert that every pair
//! of frames differs in at least one state variable, which preserves
//! soundness (any reachable bad state is reachable along a loop-free path)
//! and makes the method complete on finite-state systems.  Those pairwise
//! constraints are quadratic in `k`, so they are added **lazily**: only
//! once a step case actually comes back satisfiable, and permanently from
//! then on (they too are monotone, so the incremental contract holds).
//!
//! The step solver runs with cone-of-influence reduction **disabled** even
//! when `config.simplify` is on: the uniqueness constraints range over
//! *all* state variables, and a frame copy whose next-state update the cone
//! pass dropped would float unconstrained inside them.  Word-level
//! rewriting and the AIG layer stay on — both are equisatisfiability
//! preserving.  The base solver is an ordinary BMC session and keeps its
//! cone refinement.

use std::time::Instant;

use sepe_smt::{IncrementalSolver, SatResult, StopReason, TermId, TermManager};

use crate::bmc::{BmcConfig, BmcResult};
use crate::prove::{uniqueness_constraints, ProofCertificate, ProofMethod, ProofRun, ProveStats};
use crate::session::{BmcSession, QueryOutcome};
use crate::ts::TransitionSystem;
use crate::unroll::Unroller;

/// The temporal-induction prover.  Reuses [`BmcConfig`] wholesale: budgets,
/// cancellation flags, preprocessing toggles and the fault plan mean exactly
/// what they mean for [`Bmc`](crate::Bmc); `mode` and `frame_rescore` are
/// ignored (the two sessions are inherently per-depth incremental).
#[derive(Debug, Clone, Default)]
pub struct KInduction {
    config: BmcConfig,
}

impl KInduction {
    /// Creates a prover with the given configuration.
    pub fn new(config: BmcConfig) -> Self {
        KInduction { config }
    }

    /// Runs base and step cases in lock-step up to induction depth
    /// `max_depth`.
    ///
    /// Outcomes: [`BmcResult::Counterexample`] when a base case is
    /// satisfiable (with the witness), [`BmcResult::Proved`] when a step
    /// case closes (certificate attached), [`BmcResult::NoCounterexample`]
    /// when `max_depth` passes without either, [`BmcResult::Unknown`] when
    /// a budget or fault interrupts.  `config.start_bound` skips base cases
    /// below it (the QED systems are consistent at depth 0 by
    /// construction), but the step hypothesis still covers every frame.
    pub fn check(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_depth: usize,
    ) -> ProofRun {
        let started = Instant::now();
        let mut stats = ProveStats::default();

        // Base solver: a plain BMC session (init asserted, cone refinement
        // active, witness extraction for free).
        let mut base = BmcSession::open(tm, ts, &self.config);
        if !self.config.fault.sat.is_empty() {
            base.solver().set_fault_hooks(self.config.fault.sat);
        }

        // Step solver: init-free unrolling, cone reduction off (see the
        // module docs), everything else configured like the base.
        let mut step = IncrementalSolver::new();
        step.set_aig(self.config.aig);
        step.set_simplify(self.config.simplify);
        step.set_conflict_limit(self.config.conflict_limit);
        step.set_deadline(self.config.time_limit.map(|limit| started + limit));
        step.set_cancel_flags(self.config.cancel.clone());
        step.set_memory_limit(self.config.memory_limit);
        if !self.config.fault.sat.is_empty() {
            step.set_fault_hooks(self.config.fault.sat);
        }
        let mut step_unroller = Unroller::new(ts);
        let c0 = step_unroller.constraints_at(tm, 0);
        step.assert_term(tm, c0);
        let mut step_frames = 0usize; // transitions asserted so far
        let mut hypotheses = 0usize; // ¬bad frames asserted so far
        let mut unique = false; // simple-path strengthening armed?
        let mut unique_upto = 0usize; // frames covered by uniqueness pairs

        let finish = |result: BmcResult,
                      certificate: Option<ProofCertificate>,
                      mut stats: ProveStats,
                      base: &BmcSession<'_>,
                      step: &IncrementalSolver,
                      depth: usize| {
            let base_stats = base.stats();
            stats.queries += base_stats.queries;
            stats.conflicts += base_stats.conflicts;
            stats.conflicts += step.stats().conflicts;
            stats.duration = started.elapsed();
            stats.depth_reached = depth;
            stats.solver = step.stats();
            ProofRun {
                result,
                certificate,
                stats,
            }
        };

        let mut depth = self.config.start_bound;
        loop {
            if depth > max_depth {
                return finish(
                    BmcResult::NoCounterexample { bound: max_depth },
                    None,
                    stats,
                    &base,
                    &step,
                    max_depth,
                );
            }
            // Injected cancellation at the between-depths poll, mirroring
            // the per-depth BMC modes.
            if self.config.fault.cancel_at_depth == Some(depth) {
                return finish(
                    BmcResult::Unknown {
                        bound: depth,
                        reason: StopReason::Cancelled,
                    },
                    None,
                    stats,
                    &base,
                    &step,
                    depth,
                );
            }

            // Base case at `depth`.
            base.extend(tm, depth);
            let bad = base.bad_at(tm, depth);
            match base.query(tm, depth, &[bad]) {
                QueryOutcome::Counterexample(witness) => {
                    return finish(
                        BmcResult::Counterexample(witness),
                        None,
                        stats,
                        &base,
                        &step,
                        depth,
                    );
                }
                QueryOutcome::Unknown(reason) => {
                    return finish(
                        BmcResult::Unknown {
                            bound: depth,
                            reason,
                        },
                        None,
                        stats,
                        &base,
                        &step,
                        depth,
                    );
                }
                QueryOutcome::Unreachable => {}
            }

            // Step case at `depth` (the depth-0 step case — "no constrained
            // state is bad" — is legitimate but usually satisfiable; it
            // costs one cheap query).
            while step_frames < depth {
                let t = step_unroller.transition(tm, step_frames);
                step.assert_term(tm, t);
                let c = step_unroller.constraints_at(tm, step_frames + 1);
                step.assert_term(tm, c);
                step_frames += 1;
            }
            while hypotheses < depth {
                let bad_h = step_unroller.bad_at(tm, hypotheses);
                let not_bad = tm.not(bad_h);
                step.assert_term(tm, not_bad);
                hypotheses += 1;
            }
            if unique && unique_upto < depth {
                for pair in new_uniqueness_pairs(tm, ts, &mut step_unroller, unique_upto, depth) {
                    step.assert_term(tm, pair);
                    stats.uniqueness_constraints += 1;
                }
                unique_upto = depth;
            }
            let bad_k = step_unroller.bad_at(tm, depth);
            let mut outcome = step.check_assuming(tm, &[bad_k]);
            stats.queries += 1;
            if outcome == SatResult::Sat && !unique && depth >= 1 && !ts.state_vars().is_empty() {
                // The step case leaked: arm the simple-path strengthening
                // lazily and re-ask the same depth.
                unique = true;
                for pair in uniqueness_constraints(tm, ts, &mut step_unroller, depth) {
                    step.assert_term(tm, pair);
                    stats.uniqueness_constraints += 1;
                }
                unique_upto = depth;
                outcome = step.check_assuming(tm, &[bad_k]);
                stats.queries += 1;
            }
            match outcome {
                SatResult::Unsat => {
                    let certificate = ProofCertificate::KInduction {
                        depth,
                        start_bound: self.config.start_bound,
                        unique,
                    };
                    return finish(
                        BmcResult::Proved {
                            method: ProofMethod::KInduction,
                            depth,
                        },
                        Some(certificate),
                        stats,
                        &base,
                        &step,
                        depth,
                    );
                }
                SatResult::Sat => {}
                SatResult::Unknown => {
                    let reason = step.stop_reason().unwrap_or(StopReason::ConflictBudget);
                    return finish(
                        BmcResult::Unknown {
                            bound: depth,
                            reason,
                        },
                        None,
                        stats,
                        &base,
                        &step,
                        depth,
                    );
                }
            }
            depth += 1;
        }
    }
}

/// The uniqueness pairs that involve at least one frame in `(upto, k]` —
/// the delta when the unrolling grows from `upto` to `k` frames with the
/// strengthening already armed.
fn new_uniqueness_pairs(
    tm: &mut TermManager,
    ts: &TransitionSystem,
    unroller: &mut Unroller<'_>,
    upto: usize,
    k: usize,
) -> Vec<TermId> {
    let vars: Vec<TermId> = ts.state_vars().iter().map(|v| v.current).collect();
    if vars.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..k {
        for j in (i + 1).max(upto + 1)..=k {
            let diffs: Vec<TermId> = vars
                .iter()
                .map(|&v| {
                    let vi = unroller.var_at(tm, v, i);
                    let vj = unroller.var_at(tm, v, j);
                    tm.neq(vi, vj)
                })
                .collect();
            out.push(tm.or_many(diffs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::verify_certificate;
    use sepe_smt::Sort;

    /// A two-bit counter that wraps at 2: count ∈ {0, 1, 2}, bad = 3.
    fn capped_counter(tm: &mut TermManager) -> TransitionSystem {
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let two = tm.bv_const(2, 2);
        let three = tm.bv_const(3, 2);
        let at_two = tm.eq(count, two);
        let inc = tm.bv_add(count, one);
        let next = tm.ite(at_two, zero, inc);
        let bad = tm.eq(count, three);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, count, Some(zero), next);
        ts.add_bad(bad);
        ts
    }

    /// A free-running two-bit counter: bad = 3 is reached after 3 steps.
    fn free_counter(tm: &mut TermManager) -> TransitionSystem {
        let count = tm.var("count", Sort::BitVec(2));
        let zero = tm.zero(2);
        let one = tm.one(2);
        let three = tm.bv_const(3, 2);
        let next = tm.bv_add(count, one);
        let bad = tm.eq(count, three);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, count, Some(zero), next);
        ts.add_bad(bad);
        ts
    }

    #[test]
    fn proves_the_capped_counter_and_the_certificate_verifies() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let run = KInduction::new(BmcConfig::default()).check(&mut tm, &ts, 8);
        let BmcResult::Proved { method, depth } = run.result else {
            panic!("expected a proof, got {:?}", run.result);
        };
        assert_eq!(method, ProofMethod::KInduction);
        assert!(depth <= 4, "the counter has 3 reachable states");
        let cert = run.certificate.expect("proof carries a certificate");
        assert_eq!(verify_certificate(&mut tm, &ts, &cert), Ok(()));
    }

    #[test]
    fn falsifies_the_free_counter_with_a_minimal_witness() {
        let mut tm = TermManager::new();
        let ts = free_counter(&mut tm);
        let run = KInduction::new(BmcConfig::default()).check(&mut tm, &ts, 8);
        let BmcResult::Counterexample(w) = run.result else {
            panic!("expected a counterexample, got {:?}", run.result);
        };
        assert_eq!(w.num_steps(), 3, "0 → 1 → 2 → 3");
        assert!(run.certificate.is_none());
    }

    #[test]
    fn uniqueness_constraints_fire_only_when_needed() {
        // The capped counter's step case at small k admits a loop-free
        // spurious path (e.g. 3 → 0 with bad at the start), so the proof
        // needs the simple-path strengthening; the run must record it.
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let run = KInduction::new(BmcConfig::default()).check(&mut tm, &ts, 8);
        assert!(run.result.is_proved());
        if let Some(ProofCertificate::KInduction { unique, .. }) = run.certificate {
            assert_eq!(
                unique,
                run.stats.uniqueness_constraints > 0,
                "the certificate records exactly what the prover asserted"
            );
        } else {
            panic!("wrong certificate shape");
        }
    }

    #[test]
    fn depth_cap_reports_no_counterexample() {
        // An 8-bit counter capped at 200 with bad = 255: provable, but only
        // at depths far beyond a cap of 2 — the run must fall back to the
        // bounded verdict, not claim a proof.
        let mut tm = TermManager::new();
        let count = tm.var("big", Sort::BitVec(8));
        let zero = tm.zero(8);
        let one = tm.one(8);
        let cap = tm.bv_const(200, 8);
        let bad_val = tm.bv_const(255, 8);
        let at_cap = tm.eq(count, cap);
        let inc = tm.bv_add(count, one);
        let next = tm.ite(at_cap, zero, inc);
        let bad = tm.eq(count, bad_val);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, count, Some(zero), next);
        ts.add_bad(bad);
        let run = KInduction::new(BmcConfig::default()).check(&mut tm, &ts, 2);
        assert!(
            matches!(run.result, BmcResult::NoCounterexample { bound: 2 }),
            "got {:?}",
            run.result
        );
    }

    #[test]
    fn injected_cancellation_stops_cleanly() {
        let mut tm = TermManager::new();
        let ts = capped_counter(&mut tm);
        let config = BmcConfig {
            fault: crate::BmcFaultPlan {
                cancel_at_depth: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let run = KInduction::new(config).check(&mut tm, &ts, 8);
        assert!(
            matches!(
                run.result,
                BmcResult::Unknown {
                    bound: 1,
                    reason: StopReason::Cancelled
                }
            ),
            "got {:?}",
            run.result
        );
    }
}
