//! Word-level transition systems and bounded model checking.
//!
//! The paper converts the RIDECORE RTL into the BTOR2 word-level
//! transition-system format (via Yosys) and model-checks it with Pono.  This
//! crate plays both roles: [`TransitionSystem`] is the BTOR2-like IR (state
//! variables with init/next functions, inputs, invariant constraints and bad
//! states), and [`Bmc`] is the bounded model checker that unrolls the system
//! frame by frame and extracts counterexample [`Witness`]es.
//!
//! # Example
//!
//! A two-bit counter that should never reach 3:
//!
//! ```
//! use sepe_smt::{Sort, TermManager};
//! use sepe_tsys::{Bmc, BmcConfig, BmcResult, TransitionSystem};
//!
//! let mut tm = TermManager::new();
//! let count = tm.var("count", Sort::BitVec(2));
//! let one = tm.one(2);
//! let next = tm.bv_add(count, one);
//! let zero = tm.zero(2);
//! let three = tm.bv_const(3, 2);
//! let bad = tm.eq(count, three);
//!
//! let mut ts = TransitionSystem::new();
//! ts.add_state_var(&tm, count, Some(zero), next);
//! ts.add_bad(bad);
//!
//! let result = Bmc::new(BmcConfig::default()).check(&mut tm, &ts, 8);
//! match result {
//!     BmcResult::Counterexample(witness) => assert_eq!(witness.len(), 4),
//!     _ => panic!("the counter reaches 3 after three steps"),
//! }
//! ```

pub mod bmc;
pub mod induction;
pub mod pdr;
pub mod prove;
pub mod session;
pub mod ts;
pub mod unroll;
pub mod witness;

pub use bmc::{
    Bmc, BmcConfig, BmcConfigBuilder, BmcFaultPlan, BmcMode, BmcResult, BmcStats, DepthStats,
};
pub use induction::KInduction;
pub use pdr::Pdr;
pub use prove::{
    corrupt_certificate, verify_certificate, CertificateError, ProofCertificate, ProofMethod,
    ProofRun, ProveStats,
};
pub use session::{BmcSession, QueryOutcome};
pub use ts::{CoiInfo, StateVar, TransitionSystem};
pub use unroll::Unroller;
pub use witness::{Frame, Witness};
