//! The transition-system IR.

use std::collections::HashMap;

use sepe_smt::{concrete, TermId, TermManager};

/// One state variable: its current-state term (a variable), an optional
/// initial value and its next-state function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateVar {
    /// The current-state variable term.
    pub current: TermId,
    /// Initial-state value (a term over constants and other current-state
    /// variables); `None` leaves the initial value unconstrained.
    pub init: Option<TermId>,
    /// Next-state function (a term over current-state variables and inputs).
    pub next: TermId,
}

/// A word-level transition system (the BTOR2-like IR of the reproduction).
#[derive(Debug, Clone, Default)]
pub struct TransitionSystem {
    state_vars: Vec<StateVar>,
    inputs: Vec<TermId>,
    constraints: Vec<TermId>,
    bad: Vec<TermId>,
}

impl TransitionSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a state variable.
    ///
    /// # Panics
    ///
    /// Panics if `current` is not a variable term, or if the sorts of
    /// `current`, `init` and `next` disagree.
    pub fn add_state_var(
        &mut self,
        tm: &TermManager,
        current: TermId,
        init: Option<TermId>,
        next: TermId,
    ) -> StateVar {
        assert!(
            tm.var_name(current).is_some(),
            "state variables must be variable terms"
        );
        assert_eq!(tm.sort(current), tm.sort(next), "next-state sort mismatch");
        if let Some(init) = init {
            assert_eq!(tm.sort(current), tm.sort(init), "init sort mismatch");
        }
        let sv = StateVar {
            current,
            init,
            next,
        };
        self.state_vars.push(sv);
        sv
    }

    /// Registers an input variable.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a variable term.
    pub fn add_input(&mut self, tm: &TermManager, input: TermId) {
        assert!(
            tm.var_name(input).is_some(),
            "inputs must be variable terms"
        );
        self.inputs.push(input);
    }

    /// Adds an invariant constraint (assumed to hold in every frame).
    pub fn add_constraint(&mut self, constraint: TermId) {
        self.constraints.push(constraint);
    }

    /// Adds a bad-state property (the BMC target).
    pub fn add_bad(&mut self, bad: TermId) {
        self.bad.push(bad);
    }

    /// The registered state variables.
    pub fn state_vars(&self) -> &[StateVar] {
        &self.state_vars
    }

    /// The registered inputs.
    pub fn inputs(&self) -> &[TermId] {
        &self.inputs
    }

    /// The invariant constraints.
    pub fn constraints(&self) -> &[TermId] {
        &self.constraints
    }

    /// The bad-state properties.
    pub fn bad_states(&self) -> &[TermId] {
        &self.bad
    }

    /// Looks up a state variable by its variable name.
    pub fn find_state(&self, tm: &TermManager, name: &str) -> Option<StateVar> {
        self.state_vars
            .iter()
            .copied()
            .find(|sv| tm.var_name(sv.current) == Some(name))
    }

    /// Concretely simulates the system for `inputs_per_frame.len()` steps.
    ///
    /// Returns, for each frame, the value of every state variable *before*
    /// that frame's transition (frame 0 holds the initial state), plus one
    /// final post-state entry.  Unconstrained initial values and unspecified
    /// inputs default to zero.  This is used to replay BMC witnesses on an
    /// independent path.
    pub fn simulate(
        &self,
        tm: &TermManager,
        inputs_per_frame: &[HashMap<TermId, u64>],
    ) -> Vec<HashMap<TermId, u64>> {
        let mut state: HashMap<TermId, u64> = HashMap::new();
        for sv in &self.state_vars {
            let v = sv
                .init
                .map(|t| concrete::eval(tm, t, &HashMap::new()))
                .unwrap_or(0);
            state.insert(sv.current, v);
        }
        let mut trace = vec![state.clone()];
        for frame_inputs in inputs_per_frame {
            let mut env = state.clone();
            for (&k, &v) in frame_inputs {
                env.insert(k, v);
            }
            let mut next_state = HashMap::new();
            for sv in &self.state_vars {
                next_state.insert(sv.current, concrete::eval(tm, sv.next, &env));
            }
            state = next_state;
            trace.push(state.clone());
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::Sort;

    #[test]
    fn builds_and_queries_a_counter() {
        let mut tm = TermManager::new();
        let c = tm.var("count", Sort::BitVec(4));
        let inc = tm.var("inc", Sort::BitVec(4));
        let next = tm.bv_add(c, inc);
        let zero = tm.zero(4);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(zero), next);
        ts.add_input(&tm, inc);
        assert_eq!(ts.state_vars().len(), 1);
        assert_eq!(ts.inputs().len(), 1);
        assert_eq!(ts.find_state(&tm, "count").map(|s| s.current), Some(c));
        assert!(ts.find_state(&tm, "missing").is_none());
    }

    #[test]
    fn simulate_follows_next_functions() {
        let mut tm = TermManager::new();
        let c = tm.var("count", Sort::BitVec(8));
        let inc = tm.var("inc", Sort::BitVec(8));
        let next = tm.bv_add(c, inc);
        let five = tm.bv_const(5, 8);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(five), next);
        ts.add_input(&tm, inc);
        let frames = vec![
            HashMap::from([(inc, 1u64)]),
            HashMap::from([(inc, 2u64)]),
            HashMap::from([(inc, 3u64)]),
        ];
        let trace = ts.simulate(&tm, &frames);
        let values: Vec<u64> = trace.iter().map(|s| s[&c]).collect();
        assert_eq!(values, vec![5, 6, 8, 11]);
    }

    #[test]
    #[should_panic(expected = "state variables must be variable terms")]
    fn non_variable_state_panics() {
        let mut tm = TermManager::new();
        let c = tm.bv_const(3, 4);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, None, c);
    }

    #[test]
    #[should_panic(expected = "next-state sort mismatch")]
    fn sort_mismatch_panics() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::BitVec(4));
        let n = tm.zero(8);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, None, n);
    }
}
