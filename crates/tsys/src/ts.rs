//! The transition-system IR.

use std::collections::{HashMap, HashSet};

use sepe_smt::{concrete, TermId, TermManager};

/// One state variable: its current-state term (a variable), an optional
/// initial value and its next-state function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateVar {
    /// The current-state variable term.
    pub current: TermId,
    /// Initial-state value (a term over constants and other current-state
    /// variables); `None` leaves the initial value unconstrained.
    pub init: Option<TermId>,
    /// Next-state function (a term over current-state variables and inputs).
    pub next: TermId,
}

/// Result of [`TransitionSystem::cone_of_influence`]: how many transition
/// steps each current-state variable needs to influence a bad state or an
/// invariant constraint.
///
/// `dist(v) == 0` means `v` occurs directly in a bad-state property or a
/// constraint; `dist(v) == d` means the shortest dependency chain from `v`
/// through next-state functions to such a root has `d` steps.  Variables
/// with no entry cannot influence the roots at all (the static cone).  The
/// bounded model checker uses the distances *per frame*: the update into
/// frame `k` of a depth-`b` unrolling only matters when
/// `dist(v) <= b - k` — the remaining depth — so the last frames of a
/// bounded check drop strictly more than the static fixpoint.
#[derive(Debug, Clone)]
pub struct CoiInfo {
    /// Current-state variable → distance (in transition steps) to the
    /// nearest bad-state/constraint root.
    dist: HashMap<TermId, usize>,
    /// Total number of registered state variables.
    num_state_vars: usize,
    /// Largest finite distance in `dist` (0 when the cone is empty): past
    /// this remaining depth the per-frame cone stops growing, so callers
    /// can saturate their refinement levels here and skip no-op passes.
    max_dist: usize,
    /// Number of state variables outside the static cone (their per-frame
    /// updates can always be dropped before encoding).
    pub dropped: usize,
}

impl CoiInfo {
    /// Whether a state variable's update must be asserted at *some* frame
    /// (the static cone).
    pub fn keeps(&self, current: TermId) -> bool {
        self.dist.contains_key(&current)
    }

    /// The variable's distance to the nearest root, `None` outside the
    /// static cone.
    pub fn dist(&self, current: TermId) -> Option<usize> {
        self.dist.get(&current).copied()
    }

    /// Whether a state variable's update must be asserted when `remaining`
    /// transition steps are left below the bound.
    pub fn keeps_within(&self, current: TermId, remaining: usize) -> bool {
        self.dist.get(&current).is_some_and(|&d| d <= remaining)
    }

    /// Number of state variables whose update can be dropped at `remaining`
    /// steps below the bound (static drops plus the per-depth refinement).
    pub fn dropped_within(&self, remaining: usize) -> usize {
        let kept = self.dist.values().filter(|&&d| d <= remaining).count();
        self.num_state_vars - kept
    }

    /// The remaining depth at which the per-frame cone saturates: for
    /// `remaining >= max_dist()` the kept set equals the static cone and no
    /// later refinement can add anything.
    pub fn max_dist(&self) -> usize {
        self.max_dist
    }
}

/// A word-level transition system (the BTOR2-like IR of the reproduction).
#[derive(Debug, Clone, Default)]
pub struct TransitionSystem {
    state_vars: Vec<StateVar>,
    inputs: Vec<TermId>,
    constraints: Vec<TermId>,
    bad: Vec<TermId>,
}

impl TransitionSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a state variable.
    ///
    /// # Panics
    ///
    /// Panics if `current` is not a variable term, or if the sorts of
    /// `current`, `init` and `next` disagree.
    pub fn add_state_var(
        &mut self,
        tm: &TermManager,
        current: TermId,
        init: Option<TermId>,
        next: TermId,
    ) -> StateVar {
        assert!(
            tm.var_name(current).is_some(),
            "state variables must be variable terms"
        );
        assert_eq!(tm.sort(current), tm.sort(next), "next-state sort mismatch");
        if let Some(init) = init {
            assert_eq!(tm.sort(current), tm.sort(init), "init sort mismatch");
        }
        let sv = StateVar {
            current,
            init,
            next,
        };
        self.state_vars.push(sv);
        sv
    }

    /// Registers an input variable.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a variable term.
    pub fn add_input(&mut self, tm: &TermManager, input: TermId) {
        assert!(
            tm.var_name(input).is_some(),
            "inputs must be variable terms"
        );
        self.inputs.push(input);
    }

    /// Adds an invariant constraint (assumed to hold in every frame).
    pub fn add_constraint(&mut self, constraint: TermId) {
        self.constraints.push(constraint);
    }

    /// Adds a bad-state property (the BMC target).
    pub fn add_bad(&mut self, bad: TermId) {
        self.bad.push(bad);
    }

    /// The registered state variables.
    pub fn state_vars(&self) -> &[StateVar] {
        &self.state_vars
    }

    /// The registered inputs.
    pub fn inputs(&self) -> &[TermId] {
        &self.inputs
    }

    /// The invariant constraints.
    pub fn constraints(&self) -> &[TermId] {
        &self.constraints
    }

    /// The bad-state properties.
    pub fn bad_states(&self) -> &[TermId] {
        &self.bad
    }

    /// Looks up a state variable by its variable name.
    pub fn find_state(&self, tm: &TermManager, name: &str) -> Option<StateVar> {
        self.state_vars
            .iter()
            .copied()
            .find(|sv| tm.var_name(sv.current) == Some(name))
    }

    /// Computes the layered cone of influence of the bad-state properties.
    ///
    /// A state variable is *kept* when it can reach a bad-state property or
    /// an invariant constraint through the next-state dependency graph
    /// (constraints must be roots: a constraint over a variable whose update
    /// was dropped could otherwise be satisfied by values the real update
    /// forbids, creating spurious counterexamples).  The breadth-first
    /// search additionally records each kept variable's *distance* — how
    /// many transition steps its value needs to propagate to a root — which
    /// is what lets the model checker drop updates per frame: at remaining
    /// depth `r` below the bound, only variables with distance `<= r` can
    /// still matter.  The next-state update of every other variable is a
    /// pure definition at that frame — the variable occurs in no bad state,
    /// no constraint and no kept update of any later frame — so dropping it
    /// preserves satisfiability frame for frame.  Initial values stay
    /// asserted for all variables (frame 0 is shared), and the model checker
    /// reconstructs dropped variables' trace values by forward evaluation
    /// when it extracts a witness.
    pub fn cone_of_influence(&self, tm: &TermManager) -> CoiInfo {
        let state_set: HashSet<TermId> = self.state_vars.iter().map(|sv| sv.current).collect();
        let mut dist: HashMap<TermId, usize> = HashMap::new();
        let mut roots: Vec<TermId> = Vec::new();
        roots.extend(self.bad.iter().copied());
        roots.extend(self.constraints.iter().copied());
        let mut frontier: Vec<TermId> = Vec::new();
        for v in tm.collect_vars(&roots) {
            if state_set.contains(&v) && !dist.contains_key(&v) {
                dist.insert(v, 0);
                frontier.push(v);
            }
        }
        let next_of: HashMap<TermId, TermId> = self
            .state_vars
            .iter()
            .map(|sv| (sv.current, sv.next))
            .collect();
        let mut layer = 0usize;
        while !frontier.is_empty() {
            layer += 1;
            let mut next_frontier: Vec<TermId> = Vec::new();
            for v in frontier {
                let next = next_of[&v];
                for dep in tm.collect_vars(&[next]) {
                    if state_set.contains(&dep) && !dist.contains_key(&dep) {
                        dist.insert(dep, layer);
                        next_frontier.push(dep);
                    }
                }
            }
            frontier = next_frontier;
        }
        let num_state_vars = self.state_vars.len();
        let dropped = num_state_vars - dist.len();
        let max_dist = dist.values().copied().max().unwrap_or(0);
        CoiInfo {
            dist,
            num_state_vars,
            dropped,
            max_dist,
        }
    }

    /// Concretely simulates the system for `inputs_per_frame.len()` steps.
    ///
    /// Returns, for each frame, the value of every state variable *before*
    /// that frame's transition (frame 0 holds the initial state), plus one
    /// final post-state entry.  Unconstrained initial values and unspecified
    /// inputs default to zero.  This is used to replay BMC witnesses on an
    /// independent path.
    pub fn simulate(
        &self,
        tm: &TermManager,
        inputs_per_frame: &[HashMap<TermId, u64>],
    ) -> Vec<HashMap<TermId, u64>> {
        let mut state: HashMap<TermId, u64> = HashMap::new();
        for sv in &self.state_vars {
            let v = sv
                .init
                .map(|t| concrete::eval(tm, t, &HashMap::new()))
                .unwrap_or(0);
            state.insert(sv.current, v);
        }
        let mut trace = vec![state.clone()];
        for frame_inputs in inputs_per_frame {
            let mut env = state.clone();
            for (&k, &v) in frame_inputs {
                env.insert(k, v);
            }
            let mut next_state = HashMap::new();
            for sv in &self.state_vars {
                next_state.insert(sv.current, concrete::eval(tm, sv.next, &env));
            }
            state = next_state;
            trace.push(state.clone());
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::Sort;

    #[test]
    fn builds_and_queries_a_counter() {
        let mut tm = TermManager::new();
        let c = tm.var("count", Sort::BitVec(4));
        let inc = tm.var("inc", Sort::BitVec(4));
        let next = tm.bv_add(c, inc);
        let zero = tm.zero(4);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(zero), next);
        ts.add_input(&tm, inc);
        assert_eq!(ts.state_vars().len(), 1);
        assert_eq!(ts.inputs().len(), 1);
        assert_eq!(ts.find_state(&tm, "count").map(|s| s.current), Some(c));
        assert!(ts.find_state(&tm, "missing").is_none());
    }

    #[test]
    fn simulate_follows_next_functions() {
        let mut tm = TermManager::new();
        let c = tm.var("count", Sort::BitVec(8));
        let inc = tm.var("inc", Sort::BitVec(8));
        let next = tm.bv_add(c, inc);
        let five = tm.bv_const(5, 8);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(five), next);
        ts.add_input(&tm, inc);
        let frames = vec![
            HashMap::from([(inc, 1u64)]),
            HashMap::from([(inc, 2u64)]),
            HashMap::from([(inc, 3u64)]),
        ];
        let trace = ts.simulate(&tm, &frames);
        let values: Vec<u64> = trace.iter().map(|s| s[&c]).collect();
        assert_eq!(values, vec![5, 6, 8, 11]);
    }

    #[test]
    fn cone_of_influence_keeps_bad_constraint_and_transitive_deps() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(4)); // in bad
        let b = tm.var("b", Sort::BitVec(4)); // feeds a
        let c = tm.var("c", Sort::BitVec(4)); // in a constraint
        let d = tm.var("d", Sort::BitVec(4)); // dead
        let e = tm.var("e", Sort::BitVec(4)); // feeds only d
        let mut ts = TransitionSystem::new();
        let next_a = tm.bv_add(a, b);
        ts.add_state_var(&tm, a, None, next_a);
        ts.add_state_var(&tm, b, None, b);
        ts.add_state_var(&tm, c, None, c);
        let next_d = tm.bv_add(d, e);
        ts.add_state_var(&tm, d, None, next_d);
        ts.add_state_var(&tm, e, None, e);
        let three = tm.bv_const(3, 4);
        let bad = tm.eq(a, three);
        ts.add_bad(bad);
        let zero = tm.zero(4);
        let constraint = tm.neq(c, zero);
        ts.add_constraint(constraint);
        let coi = ts.cone_of_influence(&tm);
        assert!(coi.keeps(a), "bad-state variable is kept");
        assert!(coi.keeps(b), "transitive dependency of a kept update");
        assert!(coi.keeps(c), "constraint variables are roots");
        assert!(!coi.keeps(d), "unobserved variable is dropped");
        assert!(!coi.keeps(e), "variable feeding only dropped updates");
        assert_eq!(coi.dropped, 2);
        // Distance layers: roots at 0, feeders one step out.
        assert_eq!(coi.dist(a), Some(0));
        assert_eq!(coi.dist(b), Some(1));
        assert_eq!(coi.dist(c), Some(0));
        assert_eq!(coi.dist(d), None);
        assert_eq!(coi.dist(e), None);
        // Per-depth refinement: with no remaining depth only the roots'
        // updates matter, one step out `b` joins them.
        assert!(coi.keeps_within(a, 0));
        assert!(!coi.keeps_within(b, 0));
        assert!(coi.keeps_within(b, 1));
        assert!(!coi.keeps_within(d, 99));
        assert_eq!(coi.dropped_within(0), 3);
        assert_eq!(coi.dropped_within(1), 2);
        assert_eq!(coi.dropped_within(7), 2);
    }

    #[test]
    #[should_panic(expected = "state variables must be variable terms")]
    fn non_variable_state_panics() {
        let mut tm = TermManager::new();
        let c = tm.bv_const(3, 4);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, None, c);
    }

    #[test]
    #[should_panic(expected = "next-state sort mismatch")]
    fn sort_mismatch_panics() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::BitVec(4));
        let n = tm.zero(8);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, None, n);
    }
}
