//! Counterexample witnesses.

use std::collections::HashMap;
use std::fmt;

/// The values of one frame of a witness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    /// Input values, keyed by the original input variable name.
    pub inputs: HashMap<String, u64>,
    /// State-variable values, keyed by the original state variable name.
    pub states: HashMap<String, u64>,
}

impl Frame {
    /// Value of an input in this frame (0 if absent).
    pub fn input(&self, name: &str) -> u64 {
        self.inputs.get(name).copied().unwrap_or(0)
    }

    /// Value of a state variable in this frame (0 if absent).
    pub fn state(&self, name: &str) -> u64 {
        self.states.get(name).copied().unwrap_or(0)
    }
}

/// A bounded-model-checking counterexample: one [`Frame`] per time step,
/// frame 0 being the initial state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Witness {
    frames: Vec<Frame>,
}

impl Witness {
    /// Creates a witness from frames.
    pub fn new(frames: Vec<Frame>) -> Self {
        Witness { frames }
    }

    /// Number of frames (the counterexample length is `len() - 1` steps).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the witness has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of transition steps in the counterexample.
    pub fn num_steps(&self) -> usize {
        self.frames.len().saturating_sub(1)
    }

    /// The frames, in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// A specific frame.
    pub fn frame(&self, k: usize) -> &Frame {
        &self.frames[k]
    }

    /// The last frame (where the bad state holds).
    ///
    /// # Panics
    ///
    /// Panics on an empty witness.
    pub fn last(&self) -> &Frame {
        self.frames.last().expect("witness has at least one frame")
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, frame) in self.frames.iter().enumerate() {
            writeln!(f, "frame {k}:")?;
            let mut inputs: Vec<_> = frame.inputs.iter().collect();
            inputs.sort();
            for (name, value) in inputs {
                writeln!(f, "  in  {name} = {value:#x}")?;
            }
            let mut states: Vec<_> = frame.states.iter().collect();
            states.sort();
            for (name, value) in states {
                writeln!(f, "  st  {name} = {value:#x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_defaults() {
        let mut f0 = Frame::default();
        f0.states.insert("count".into(), 3);
        f0.inputs.insert("inc".into(), 1);
        let w = Witness::new(vec![f0.clone(), Frame::default()]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.num_steps(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.frame(0).state("count"), 3);
        assert_eq!(w.frame(0).input("inc"), 1);
        assert_eq!(
            w.frame(1).state("count"),
            0,
            "missing values default to zero"
        );
        assert_eq!(w.last(), &Frame::default());
    }

    #[test]
    fn display_lists_frames() {
        let mut f = Frame::default();
        f.states.insert("x".into(), 255);
        let w = Witness::new(vec![f]);
        let s = w.to_string();
        assert!(s.contains("frame 0"));
        assert!(s.contains("x = 0xff"));
    }

    #[test]
    fn empty_witness() {
        let w = Witness::default();
        assert!(w.is_empty());
        assert_eq!(w.num_steps(), 0);
    }
}
