//! A multi-query bounded-model-checking *session* over one shared unrolling.
//!
//! [`Bmc`](crate::Bmc) answers one reachability question per run; a
//! [`BmcSession`] keeps the unrolling, the cone-of-influence refinement state
//! and one persistent [`IncrementalSolver`] open so a *caller-directed*
//! sequence of queries — each a `check_assuming` call with its own retractable
//! assumption set — can share every encoded frame and every learnt clause.
//! This is the substrate of the batched multi-bug detector
//! (`sepe_sqed::batch`): the transition system carries one activation literal
//! per catalogue entry, and each query selects an entry by assuming its
//! literal true and the others false on top of the depth's bad state.
//!
//! The session inherits the incremental-solving contract wholesale: frames
//! are asserted append-only (with per-depth cone-of-influence refinement
//! deltas exactly like [`BmcMode::PerDepth`](crate::BmcMode::PerDepth)),
//! assumptions never contribute rewrite pins, and the node→CNF-variable
//! mapping only grows — so interleaving queries for different assumption sets
//! cannot invalidate each other's encodings.

use std::time::Instant;

use sepe_smt::{IncrementalSolver, Model, SatResult, StopReason, TermId, TermManager};

use crate::bmc::{coi_dropped_total, extend_unrolling, extract_witness};
use crate::bmc::{BmcConfig, BmcStats, DepthStats};
use crate::ts::{CoiInfo, TransitionSystem};
use crate::unroll::Unroller;
use crate::witness::Witness;

/// Outcome of one session query at one bound.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The assumption set is satisfiable at this bound: a counterexample.
    Counterexample(Witness),
    /// Unsatisfiable at this bound.
    Unreachable,
    /// The query gave up without an answer (budget, cancellation, …).
    Unknown(StopReason),
}

/// A persistent per-depth BMC session: one unrolling, one incremental
/// solver, arbitrarily many assumption-parameterised queries per depth.
///
/// The session borrows its [`TransitionSystem`] for its whole lifetime (the
/// unroller caches per-frame substitutions of its state variables and
/// inputs); drop the session to rebuild on a different system.
#[derive(Debug)]
pub struct BmcSession<'ts> {
    ts: &'ts TransitionSystem,
    unroller: Unroller<'ts>,
    coi: Option<CoiInfo>,
    solver: IncrementalSolver,
    levels: Vec<usize>,
    started: Instant,
    queries: u64,
    depths: Vec<DepthStats>,
    extended_to: usize,
}

impl<'ts> BmcSession<'ts> {
    /// Opens a session: configures the solver from `config` (AIG layer,
    /// word-level rewriting, per-query conflict budget, wall deadline,
    /// cancellation flags, memory cap — fault hooks are *not* armed here;
    /// see [`BmcSession::solver`]) and asserts the initial state and the
    /// frame-0 constraints.
    pub fn open(tm: &mut TermManager, ts: &'ts TransitionSystem, config: &BmcConfig) -> Self {
        let started = Instant::now();
        let coi = config.simplify.then(|| ts.cone_of_influence(tm));
        let mut solver = IncrementalSolver::new();
        solver.set_aig(config.aig);
        solver.set_simplify(config.simplify);
        solver.set_conflict_limit(config.conflict_limit);
        solver.set_deadline(config.time_limit.map(|limit| started + limit));
        solver.set_cancel_flags(config.cancel.clone());
        solver.set_memory_limit(config.memory_limit);
        let mut unroller = Unroller::new(ts);
        let init = unroller.init(tm);
        solver.assert_term(tm, init);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        BmcSession {
            ts,
            unroller,
            coi,
            solver,
            levels: Vec::new(),
            started,
            queries: 0,
            depths: Vec::new(),
            extended_to: 0,
        }
    }

    /// Extends the asserted unrolling (append-only, with cone-of-influence
    /// refinement deltas for already-asserted frames) so queries at `bound`
    /// are answerable.  Idempotent per bound; bounds must not decrease the
    /// refinement (calling with a smaller bound is a no-op for frames but
    /// never retracts anything).
    pub fn extend(&mut self, tm: &mut TermManager, bound: usize) {
        for t in extend_unrolling(
            tm,
            &mut self.unroller,
            self.coi.as_ref(),
            &mut self.levels,
            bound,
        ) {
            self.solver.assert_term(tm, t);
        }
        self.extended_to = self.extended_to.max(bound);
    }

    /// The underlying incremental solver, for arming per-query budgets or
    /// fault hooks around individual queries (the batched detector arms a
    /// catalogue entry's injected fault only while that entry's query runs).
    pub fn solver(&mut self) -> &mut IncrementalSolver {
        &mut self.solver
    }

    /// The bad-state disjunct at `bound` (the usual final retractable
    /// assumption of a query at that depth).
    pub fn bad_at(&mut self, tm: &mut TermManager, bound: usize) -> TermId {
        self.unroller.bad_at(tm, bound)
    }

    /// Issues one query: the permanent unrolling conjoined with the given
    /// retractable `assumptions` (activation literals, the depth's bad
    /// state, …).  On SAT, extracts the witness at `bound`, reconstructing
    /// cone-dropped state values by forward evaluation.
    ///
    /// The caller must have [`extend`](Self::extend)ed the session to at
    /// least `bound` first.
    pub fn query(
        &mut self,
        tm: &mut TermManager,
        bound: usize,
        assumptions: &[TermId],
    ) -> QueryOutcome {
        assert!(
            bound <= self.extended_to,
            "query at bound {bound} but the session is only extended to {}",
            self.extended_to
        );
        let result = self.solver.check_assuming(tm, assumptions);
        self.queries += 1;
        let sstats = self.solver.stats();
        self.depths.push(DepthStats {
            bound,
            conflicts: sstats.conflicts_last_check,
            clauses_added: sstats.clauses_last_check,
            learnt_retained: sstats.learnt_retained,
            duration: sstats.duration_last_check,
        });
        match result {
            SatResult::Sat => {
                let model: Model = self.solver.model(tm).clone();
                let witness = extract_witness(
                    tm,
                    self.ts,
                    &mut self.unroller,
                    &model,
                    bound,
                    self.coi.as_ref(),
                );
                QueryOutcome::Counterexample(witness)
            }
            SatResult::Unsat => QueryOutcome::Unreachable,
            SatResult::Unknown => QueryOutcome::Unknown(
                self.solver
                    .stop_reason()
                    .unwrap_or(StopReason::ConflictBudget),
            ),
        }
    }

    /// Per-query work deltas of the most recent query (conflicts, clauses
    /// newly encoded, duration) — the last entry pushed by
    /// [`query`](Self::query).
    pub fn last_query_stats(&self) -> Option<&DepthStats> {
        self.depths.last()
    }

    /// Session statistics in the familiar [`BmcStats`] shape: cumulative
    /// solver counters (with the cone-dropped-update total folded in), every
    /// query's per-depth delta in issue order, and the wall time since the
    /// session opened.
    pub fn stats(&self) -> BmcStats {
        let mut solver = self.solver.stats();
        solver.encode.rewrite.coi_dropped_updates =
            coi_dropped_total(self.coi.as_ref(), &self.levels);
        BmcStats {
            queries: self.queries,
            conflicts: solver.conflicts,
            duration: self.started.elapsed(),
            deepest_bound: self.extended_to,
            solver,
            depths: self.depths.clone(),
        }
    }
}
