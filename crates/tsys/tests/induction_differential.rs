//! Cross-method differential suite: k-induction vs IC3/PDR vs deep-bound
//! BMC over seeded randomized transition systems.
//!
//! Every system is run through all three methods and the conclusive
//! verdicts must agree:
//!
//! * any **Falsified** verdict must be reproducible by plain bounded BMC
//!   at the reported depth, with a shortest trace no longer than the
//!   prover's;
//! * any **Proved** verdict must be corroborated by bounded BMC finding
//!   nothing at *twice* the proof depth, and the attached certificate must
//!   pass the independent-solver self-check;
//! * no pair of conclusive verdicts may disagree.
//!
//! Inconclusive outcomes (`NoCounterexample` at the cap, `Unknown` on a
//! budget) impose no constraint — agreement is only required between
//! methods that actually concluded.
//!
//! The generator is a deterministic xorshift stream seeded from
//! `SEPE_FAULT_SEED` (default 42), the same knob the fault-injection CI
//! matrix sweeps, so each matrix job exercises a different population.

use std::time::Duration;

use sepe_smt::{Sort, TermId, TermManager};
use sepe_tsys::{
    verify_certificate, Bmc, BmcConfig, BmcMode, BmcResult, KInduction, Pdr, ProofMethod,
    TransitionSystem, Witness,
};

/// Deterministic xorshift64* stream — no external RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // Zero is a fixed point of xorshift; displace it.
        XorShift(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform-ish value in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn seed_from_env() -> u64 {
    std::env::var("SEPE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Builds a random small transition system: 1–3 state variables of 2–4
/// bits, next-state functions drawn from a small op pool, constrained
/// inits, and a bad state targeting one or two variables.  Small widths
/// keep every orbit tiny so all three methods stay fast.
fn random_system(tm: &mut TermManager, rng: &mut XorShift) -> TransitionSystem {
    let num_vars = 1 + rng.below(3) as usize;
    let width = 2 + rng.below(3) as u32;
    let vars: Vec<TermId> = (0..num_vars)
        .map(|i| tm.var(&format!("s{i}"), Sort::BitVec(width)))
        .collect();

    let mut ts = TransitionSystem::new();
    for (i, &v) in vars.iter().enumerate() {
        let next = random_update(tm, rng, &vars, v, width);
        // Mostly constrained inits; an occasional free variable makes the
        // base case do real work.
        let init = if rng.below(4) == 0 {
            None
        } else {
            Some(tm.bv_const(rng.below(1 << width), width))
        };
        ts.add_state_var(tm, v, init, next);
        let _ = i;
    }

    // Bad state: one or two variables pinned to random constants.  A
    // conjunction of two pins is rarer to hit, biasing part of the
    // population toward safe (provable) systems.
    let pin = |tm: &mut TermManager, rng: &mut XorShift, v: TermId| {
        let c = tm.bv_const(rng.below(1 << width), width);
        tm.eq(v, c)
    };
    let a = vars[rng.below(num_vars as u64) as usize];
    let bad = if num_vars > 1 && rng.below(2) == 0 {
        let b = vars[rng.below(num_vars as u64) as usize];
        let pa = pin(tm, rng, a);
        let pb = pin(tm, rng, b);
        tm.and(pa, pb)
    } else {
        pin(tm, rng, a)
    };
    ts.add_bad(bad);
    ts
}

/// A random next-state function over the state variables: a shallow tree
/// of arithmetic/boolean ops with the occasional saturating cap thrown in
/// (caps are what make a random system *safe*, so the proved arm of the
/// differential is actually populated).
fn random_update(
    tm: &mut TermManager,
    rng: &mut XorShift,
    vars: &[TermId],
    this: TermId,
    width: u32,
) -> TermId {
    let operand = |tm: &mut TermManager, rng: &mut XorShift| -> TermId {
        if rng.below(3) == 0 {
            tm.bv_const(rng.below(1 << width), width)
        } else {
            vars[rng.below(vars.len() as u64) as usize]
        }
    };
    let lhs = operand(tm, rng);
    let rhs = operand(tm, rng);
    let raw = match rng.below(5) {
        0 => tm.bv_add(lhs, rhs),
        1 => tm.bv_sub(lhs, rhs),
        2 => tm.bv_xor(lhs, rhs),
        3 => tm.bv_and(lhs, rhs),
        _ => {
            let one = tm.one(width);
            tm.bv_add(this, one)
        }
    };
    if rng.below(2) == 0 {
        // Saturate: once the value reaches a random cap it sticks there.
        let cap = tm.bv_const(rng.below(1 << width), width);
        let at_cap = tm.bv_ule(cap, this);
        tm.ite(at_cap, cap, raw)
    } else {
        raw
    }
}

/// One method's distilled verdict for the agreement check.
#[derive(Debug)]
enum Outcome {
    Falsified { steps: usize, witness: Witness },
    Proved { method: ProofMethod, depth: usize },
    Inconclusive,
}

fn budgeted_config() -> BmcConfig {
    BmcConfig {
        time_limit: Some(Duration::from_secs(20)),
        ..BmcConfig::default()
    }
}

fn distil(result: BmcResult, label: &str) -> Outcome {
    match result {
        BmcResult::Counterexample(w) => Outcome::Falsified {
            steps: w.num_steps(),
            witness: w,
        },
        BmcResult::Proved { method, depth } => Outcome::Proved { method, depth },
        BmcResult::NoCounterexample { .. } | BmcResult::Unknown { .. } => {
            let _ = label;
            Outcome::Inconclusive
        }
    }
}

/// Runs all three methods on one system and enforces the agreement rules.
fn cross_check(tm: &mut TermManager, ts: &TransitionSystem, context: &str) {
    const PROVER_CAP: usize = 12;

    let ind_run = KInduction::new(budgeted_config()).check(tm, ts, PROVER_CAP);
    if let BmcResult::Proved { .. } = &ind_run.result {
        let cert = ind_run
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{context}: k-induction proof without certificate"));
        assert_eq!(
            verify_certificate(tm, ts, cert),
            Ok(()),
            "{context}: k-induction certificate failed the self-check"
        );
    }
    let pdr_run = Pdr::new(budgeted_config()).check(tm, ts, PROVER_CAP);
    if let BmcResult::Proved { .. } = &pdr_run.result {
        let cert = pdr_run
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{context}: PDR proof without certificate"));
        assert_eq!(
            verify_certificate(tm, ts, cert),
            Ok(()),
            "{context}: PDR certificate failed the self-check"
        );
    }

    let outcomes = vec![
        ("k-induction", distil(ind_run.result, context)),
        ("pdr", distil(pdr_run.result, context)),
    ];

    // Conclusive verdicts must not disagree with each other.
    let falsified = outcomes
        .iter()
        .filter_map(|(name, o)| match o {
            Outcome::Falsified { steps, .. } => Some((*name, *steps)),
            _ => None,
        })
        .collect::<Vec<_>>();
    let proved = outcomes
        .iter()
        .filter_map(|(name, o)| match o {
            Outcome::Proved { method, depth } => Some((*name, *method, *depth)),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert!(
        falsified.is_empty() || proved.is_empty(),
        "{context}: cross-method disagreement — falsified by {falsified:?}, proved by {proved:?}"
    );

    // Falsified ⇒ bounded BMC reproduces a trace at most as long.
    if let Some(&(name, steps)) = falsified.first() {
        let mut bmc = Bmc::new(BmcConfig {
            mode: BmcMode::PerDepth,
            ..budgeted_config()
        });
        match bmc.check(tm, ts, steps) {
            BmcResult::Counterexample(w) => assert!(
                w.num_steps() <= steps,
                "{context}: BMC shortest trace ({}) longer than {name}'s ({steps})",
                w.num_steps()
            ),
            other => {
                panic!("{context}: {name} falsified at depth {steps} but BMC returned {other:?}")
            }
        }
    }

    // Proved ⇒ bounded BMC finds nothing at twice the proof depth.
    if let Some(&(name, _method, depth)) = proved.first() {
        let deep = (2 * depth).max(4);
        let mut bmc = Bmc::new(BmcConfig {
            mode: BmcMode::PerDepth,
            ..budgeted_config()
        });
        match bmc.check(tm, ts, deep) {
            BmcResult::NoCounterexample { .. } => {}
            BmcResult::Unknown { .. } => {} // budget artefact, not a disagreement
            other => panic!(
                "{context}: {name} proved at depth {depth} but BMC at bound {deep} \
                 returned {other:?}"
            ),
        }
    }

    // Every falsifying witness the provers produced is itself a valid
    // counterexample trace length-wise (non-negative by type; just make
    // sure the two provers' traces agree on reachability, which the
    // falsified/proved disjointness above already guarantees).
    for (name, outcome) in &outcomes {
        if let Outcome::Falsified { witness, steps } = outcome {
            assert_eq!(
                witness.num_steps(),
                *steps,
                "{context}: {name} witness length is inconsistent"
            );
        }
    }
}

#[test]
fn randomized_systems_agree_across_methods() {
    let seed = seed_from_env();
    let mut rng = XorShift::new(seed);
    for case in 0..24 {
        let mut tm = TermManager::new();
        let ts = random_system(&mut tm, &mut rng);
        cross_check(&mut tm, &ts, &format!("seed {seed} case {case}"));
    }
}

#[test]
fn handcrafted_safe_and_unsafe_systems_agree() {
    // A deterministic floor under the randomized sweep: one system each
    // method *must* prove and one each *must* falsify, independent of the
    // seed, so a regression that makes every verdict inconclusive (which
    // the randomized agreement check would silently accept) still fails.
    let mut tm = TermManager::new();
    let safe = |tm: &mut TermManager, width: u32| {
        // Counter that wraps below its bad value.
        let v = tm.var(&format!("c{width}"), Sort::BitVec(width));
        let zero = tm.zero(width);
        let one = tm.one(width);
        let cap = tm.bv_const((1 << width) - 2, width);
        let bad_val = tm.bv_const((1 << width) - 1, width);
        let at_cap = tm.eq(v, cap);
        let inc = tm.bv_add(v, one);
        let next = tm.ite(at_cap, zero, inc);
        let bad = tm.eq(v, bad_val);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, v, Some(zero), next);
        ts.add_bad(bad);
        ts
    };
    for width in [2u32, 3] {
        let ts = safe(&mut tm, width);
        let run = Pdr::new(budgeted_config()).check(&mut tm, &ts, 1 << width);
        assert!(
            run.result.is_proved(),
            "PDR must prove the width-{width} wrapping counter, got {:?}",
            run.result
        );
        cross_check(&mut tm, &ts, &format!("handcrafted safe w={width}"));
    }

    // Free-running counter: reachable bad state at a known depth.
    let v = tm.var("f", Sort::BitVec(3));
    let zero = tm.zero(3);
    let one = tm.one(3);
    let five = tm.bv_const(5, 3);
    let next = tm.bv_add(v, one);
    let bad = tm.eq(v, five);
    let mut ts = TransitionSystem::new();
    ts.add_state_var(&tm, v, Some(zero), next);
    ts.add_bad(bad);
    let run = Pdr::new(budgeted_config()).check(&mut tm, &ts, 16);
    match &run.result {
        BmcResult::Counterexample(w) => assert_eq!(w.num_steps(), 5),
        other => panic!("PDR must falsify the free counter, got {other:?}"),
    }
    cross_check(&mut tm, &ts, "handcrafted unsafe");
}
