//! Processor models (design under verification) for the SEPE-SQED reproduction.
//!
//! The paper evaluates on RIDECORE, an out-of-order RV32IM core, converted to
//! BTOR2 by Yosys.  Shipping a Verilog core is outside the scope of a Rust
//! reproduction, so this crate provides the equivalent *verification
//! substrate* (see `DESIGN.md` for the substitution argument):
//!
//! * [`symbolic::SymbolicProcessor`] — a word-level
//!   transition-system model of the architectural datapath: register file,
//!   small data memory, commit interface and an *instruction-history window*
//!   that lets injected bugs depend on the recently committed instruction
//!   sequence (the observable footprint of pipeline bugs such as broken
//!   forwarding or ordering).
//! * [`concrete::MutantCore`] — the concrete twin of the symbolic
//!   model, used for witness replay and differential tests.
//! * [`mutation::Mutation`] — the bug-injection catalog reproducing
//!   the paper's mutation testing: 13 single-instruction bugs (Table 1) and
//!   20 multiple-instruction bugs (Figure 4).
//!
//! The QED modules (EDDI-V / EDSEP-V transformations, dispatch queue, the
//! universal property) live in the `sepe-sqed` crate and are wired onto the
//! transition system produced here.
//!
//! # Example
//!
//! The mutation catalog drives the paper's experiments: every Table-1
//! entry is a single-instruction bug naming the opcode it corrupts.
//!
//! ```
//! use sepe_isa::Opcode;
//! use sepe_processor::{Mutation, ProcessorConfig};
//!
//! let table1 = Mutation::table1();
//! assert_eq!(table1.len(), 13, "the paper injects 13 single-instruction bugs");
//! assert_eq!(table1[0].target_opcode(), Some(Opcode::Add));
//! assert_eq!(Mutation::figure4().len(), 20, "…and 20 multiple-instruction bugs");
//!
//! // The tiny configuration keeps formal checks fast in tests and docs.
//! let config = ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]);
//! assert!(config.xlen <= 8);
//! ```

pub mod concrete;
pub mod config;
pub mod datapath;
pub mod mutation;
pub mod symbolic;

pub use concrete::MutantCore;
pub use config::ProcessorConfig;
pub use mutation::{BugClass, Effect, Mutation, Trigger};
pub use symbolic::{ActivatedMutation, InstrPort, SymbolicProcessor};
