//! Processor model configuration.

use sepe_isa::Opcode;

/// Configuration of the processor model (symbolic and concrete).
///
/// The paper's design under verification is a 32-bit core.  The reproduction
/// keeps XLEN configurable: functional tests run at 32 bits, while the large
/// benchmark sweeps default to 16 bits so that complete parameter sweeps
/// finish in minutes on a laptop (the bit-blasted multiplier grows
/// quadratically with XLEN).  See `DESIGN.md` for the substitution notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorConfig {
    /// Data-path width in bits.  Must be a power of two between 8 and 32.
    pub xlen: u32,
    /// Number of words of data memory in the model.  Must be a power of two;
    /// the memory is split into an original half and a duplicate/equivalent
    /// half by the QED mappings.
    pub mem_words: usize,
    /// Depth of the committed-instruction history window visible to injected
    /// multiple-instruction bugs (RIDECORE-style pipeline interactions).
    pub history_depth: usize,
    /// Opcodes the symbolic instruction port is allowed to carry.  Restricting
    /// the universe per experiment mirrors how the paper exercises a portion
    /// of RV32IM and keeps unsatisfiable BMC queries tractable.
    pub allowed_opcodes: Vec<Opcode>,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig {
            xlen: 32,
            mem_words: 8,
            history_depth: 2,
            allowed_opcodes: Opcode::ALL.to_vec(),
        }
    }
}

impl ProcessorConfig {
    /// A configuration sized for fast formal queries (16-bit data path, small
    /// memory) — the default used by the benchmark harness.
    pub fn fast() -> Self {
        ProcessorConfig {
            xlen: 16,
            mem_words: 4,
            ..Self::default()
        }
    }

    /// A minimal configuration for unit tests (4-bit data path, the smallest
    /// width at which every QED mechanism is still exercised).
    pub fn tiny() -> Self {
        ProcessorConfig {
            xlen: 4,
            mem_words: 4,
            ..Self::default()
        }
    }

    /// Restricts the instruction universe to `opcodes`.
    pub fn with_opcodes(mut self, opcodes: &[Opcode]) -> Self {
        self.allowed_opcodes = opcodes.to_vec();
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a field is outside its supported range.
    pub fn validate(&self) {
        assert!(
            self.xlen.is_power_of_two() && (4..=32).contains(&self.xlen),
            "xlen must be 4, 8, 16 or 32"
        );
        assert!(
            self.mem_words.is_power_of_two() && self.mem_words >= 4,
            "mem_words must be a power of two >= 4 (the QED mappings split it into halves)"
        );
        assert!(
            (1..=4).contains(&self.history_depth),
            "history_depth must be between 1 and 4"
        );
        assert!(
            !self.allowed_opcodes.is_empty(),
            "at least one opcode must be allowed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ProcessorConfig::default().validate();
        ProcessorConfig::fast().validate();
        ProcessorConfig::tiny().validate();
    }

    #[test]
    fn with_opcodes_restricts_universe() {
        let c = ProcessorConfig::fast().with_opcodes(&[Opcode::Add, Opcode::Sub]);
        assert_eq!(c.allowed_opcodes.len(), 2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "xlen")]
    fn rejects_odd_width() {
        ProcessorConfig {
            xlen: 12,
            ..ProcessorConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "mem_words")]
    fn rejects_non_power_of_two_memory() {
        ProcessorConfig {
            mem_words: 3,
            ..ProcessorConfig::default()
        }
        .validate();
    }
}
