//! Bug-injection (mutation) catalog.
//!
//! The paper evaluates SQED and SEPE-SQED by mutation testing on RIDECORE:
//! logic bugs are injected into the RTL and the methods race to find a
//! counterexample.  Bugs fall into two classes (Section 1):
//!
//! * **single-instruction bugs** — the erroneous behaviour of one specific
//!   instruction, independent of any previously executed instructions
//!   (Table 1 injects thirteen of these);
//! * **multiple-instruction bugs** — erroneous behaviour that only manifests
//!   when a particular sequence of instructions executes consecutively
//!   (Figure 4 uses twenty of these; in RIDECORE they stem from forwarding,
//!   issue-ordering and hazard-window corner cases).
//!
//! A [`Mutation`] is a pure description: a [`Trigger`] (when does the bug
//! fire) plus an [`Effect`] (what does it corrupt).  The symbolic processor
//! compiles the description into its next-state functions and the concrete
//! [`MutantCore`](crate::concrete::MutantCore) interprets the same
//! description, so a counterexample found formally replays concretely.

use sepe_isa::{Instr, Opcode};

/// Which class of logic bug a mutation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Affects one instruction uniformly, independent of history.
    SingleInstruction,
    /// Requires a particular recently-committed instruction pattern.
    MultipleInstruction,
}

/// When a mutation fires.
///
/// All populated fields must match for the bug to trigger.  History
/// conditions refer to the most recently *committed* instruction (depth 1)
/// and the one before it (depth 2), mirroring the pipeline windows in which
/// RIDECORE's forwarding/ordering bugs live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trigger {
    /// The executing instruction must have this opcode.
    pub opcode: Option<Opcode>,
    /// The previously committed instruction must have this opcode.
    pub prev_opcode: Option<Opcode>,
    /// The instruction committed two steps ago must have this opcode.
    pub prev2_opcode: Option<Opcode>,
    /// The executing instruction's `rs1` must equal the previous
    /// instruction's destination register (a read-after-write dependency
    /// through the forwarding path).
    pub raw_on_prev_rd: bool,
    /// The executing instruction's destination must equal the previous
    /// instruction's destination (a write-after-write collision).
    pub waw_on_prev_rd: bool,
    /// The previous committed instruction must have written a register.
    pub prev_writes_reg: bool,
}

impl Trigger {
    /// A trigger that fires on every instruction with the given opcode.
    pub fn on_opcode(opcode: Opcode) -> Self {
        Trigger {
            opcode: Some(opcode),
            ..Self::default()
        }
    }

    /// Whether the trigger refers to instruction history (and therefore
    /// describes a multiple-instruction bug).
    pub fn uses_history(&self) -> bool {
        self.prev_opcode.is_some()
            || self.prev2_opcode.is_some()
            || self.raw_on_prev_rd
            || self.waw_on_prev_rd
            || self.prev_writes_reg
    }

    /// Evaluates the trigger concretely.
    ///
    /// `prev`/`prev2` are the one- and two-steps-ago committed instructions
    /// (`None` if nothing was committed yet).
    pub fn fires(&self, instr: &Instr, prev: Option<&Instr>, prev2: Option<&Instr>) -> bool {
        if let Some(op) = self.opcode {
            if instr.opcode != op {
                return false;
            }
        }
        if let Some(op) = self.prev_opcode {
            match prev {
                Some(p) if p.opcode == op => {}
                _ => return false,
            }
        }
        if let Some(op) = self.prev2_opcode {
            match prev2 {
                Some(p) if p.opcode == op => {}
                _ => return false,
            }
        }
        if self.raw_on_prev_rd {
            match prev {
                Some(p) if p.opcode.writes_rd() && !p.rd.is_zero() && instr.rs1 == p.rd => {}
                _ => return false,
            }
        }
        if self.waw_on_prev_rd {
            match prev {
                Some(p)
                    if p.opcode.writes_rd()
                        && !p.rd.is_zero()
                        && instr.opcode.writes_rd()
                        && instr.rd == p.rd => {}
                _ => return false,
            }
        }
        if self.prev_writes_reg {
            match prev {
                Some(p) if p.opcode.writes_rd() && !p.rd.is_zero() => {}
                _ => return false,
            }
        }
        true
    }
}

/// What a mutation corrupts when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// XOR a constant into the result written back (or stored, for `SW`).
    XorResult(u64),
    /// Add a constant to the result written back (or stored, for `SW`).
    AddToResult(u64),
    /// Compute the result with a different ALU operation.
    WrongOperation(Opcode),
    /// Use `rs2` where `rs1` should have been read (operand mux bug).
    SwapOperands,
    /// Drop the register write-back entirely.
    DropWriteback,
    /// Offset the effective address of a memory access by a constant
    /// number of bytes.
    AddressOffset(u64),
    /// The address generation unit ignores the instruction's immediate
    /// offset (the effective address is the base register alone).
    IgnoreMemOffset,
    /// Read the first source operand as zero (broken forwarding / stale
    /// bypass latch).
    ZeroFirstOperand,
}

/// One injected logic bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    /// Short stable identifier (used in reports and benchmark tables).
    pub name: String,
    /// Human-readable description of the injected fault.
    pub description: String,
    /// When the bug fires.
    pub trigger: Trigger,
    /// What it corrupts.
    pub effect: Effect,
}

impl Mutation {
    /// Creates a mutation.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        trigger: Trigger,
        effect: Effect,
    ) -> Self {
        Mutation {
            name: name.into(),
            description: description.into(),
            trigger,
            effect,
        }
    }

    /// The bug class implied by the trigger.
    pub fn class(&self) -> BugClass {
        if self.trigger.uses_history() {
            BugClass::MultipleInstruction
        } else {
            BugClass::SingleInstruction
        }
    }

    /// The opcode the paper's Table 1 would list for this bug (the target of
    /// the trigger), if any.
    pub fn target_opcode(&self) -> Option<Opcode> {
        self.trigger.opcode
    }

    /// The thirteen single-instruction bugs of Table 1, in the paper's row
    /// order (ADD, SUB, XOR, OR, AND, SLT, SLTU, SRA, MULH, XORI, SLLI, SRAI,
    /// SW).
    pub fn table1() -> Vec<Mutation> {
        use Opcode::*;
        let single = |op: Opcode, effect: Effect, what: &str| {
            Mutation::new(
                format!("single-{}", op.mnemonic()),
                format!("{} {what}", op.mnemonic().to_uppercase()),
                Trigger::on_opcode(op),
                effect,
            )
        };
        vec![
            single(Add, Effect::AddToResult(1), "addition result off by one"),
            single(
                Sub,
                Effect::WrongOperation(Add),
                "subtraction computes an addition",
            ),
            single(
                Xor,
                Effect::WrongOperation(Or),
                "exclusive-or computes an inclusive or",
            ),
            single(
                Or,
                Effect::XorResult(0x10),
                "bitwise OR flips bit 4 of the result",
            ),
            single(
                And,
                Effect::WrongOperation(Or),
                "bitwise AND computes an OR",
            ),
            single(
                Slt,
                Effect::WrongOperation(Sltu),
                "signed compare treats operands as unsigned",
            ),
            single(
                Sltu,
                Effect::XorResult(1),
                "unsigned compare result inverted",
            ),
            single(
                Sra,
                Effect::WrongOperation(Srl),
                "arithmetic shift loses the sign fill",
            ),
            single(
                Mulh,
                Effect::WrongOperation(Mulhu),
                "high multiply ignores operand signs",
            ),
            single(Xori, Effect::WrongOperation(Ori), "XORI computes ORI"),
            single(
                Slli,
                Effect::AddToResult(1),
                "left-shift-immediate result off by one",
            ),
            single(
                Srai,
                Effect::WrongOperation(Srli),
                "SRAI loses the sign fill",
            ),
            single(
                Sw,
                Effect::IgnoreMemOffset,
                "store ignores its immediate offset",
            ),
        ]
    }

    /// The twenty multiple-instruction bugs used for Figure 4.
    ///
    /// Each bug only fires for a specific committed-instruction pattern
    /// (back-to-back dependency, particular opcode pairs, …), which is the
    /// architectural footprint of RIDECORE's forwarding/issue/ordering bugs.
    pub fn figure4() -> Vec<Mutation> {
        use Opcode::*;
        let mut bugs = Vec::new();
        let mut push = |name: &str, desc: &str, trigger: Trigger, effect: Effect| {
            bugs.push(Mutation::new(
                format!("multi-{name}"),
                desc,
                trigger,
                effect,
            ));
        };

        push(
            "01-raw-add-add",
            "ADD reading the result of an immediately preceding ADD gets a stale zero operand",
            Trigger {
                opcode: Some(Add),
                prev_opcode: Some(Add),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::ZeroFirstOperand,
        );
        push(
            "02-raw-sub-forward",
            "SUB after any register-writing instruction it depends on uses a corrupted bypass",
            Trigger {
                opcode: Some(Sub),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::XorResult(0x2),
        );
        push(
            "03-raw-xor-after-add",
            "XOR consuming an ADD result swaps its operands",
            Trigger {
                opcode: Some(Xor),
                prev_opcode: Some(Add),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::SwapOperands,
        );
        push(
            "04-add-after-mul",
            "ADD issued right after a multiply drops its write-back",
            Trigger {
                opcode: Some(Add),
                prev_opcode: Some(Mul),
                ..Trigger::default()
            },
            Effect::DropWriteback,
        );
        push(
            "05-waw-collision",
            "two consecutive writes to the same register lose the second result's low bit",
            Trigger {
                waw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::XorResult(0x1),
        );
        push(
            "06-or-after-sw",
            "OR following a store reads a stale first operand",
            Trigger {
                opcode: Some(Or),
                prev_opcode: Some(Sw),
                ..Trigger::default()
            },
            Effect::ZeroFirstOperand,
        );
        push(
            "07-lw-after-sw",
            "load immediately after a store returns a corrupted word (broken store-to-load forwarding)",
            Trigger { opcode: Some(Lw), prev_opcode: Some(Sw), ..Trigger::default() },
            Effect::XorResult(0x8),
        );
        push(
            "08-sll-after-sll",
            "back-to-back shifts: the second shift amount is off by one",
            Trigger {
                opcode: Some(Sll),
                prev_opcode: Some(Sll),
                ..Trigger::default()
            },
            Effect::AddToResult(1),
        );
        push(
            "09-and-raw-and",
            "AND chained on an AND result computes OR instead",
            Trigger {
                opcode: Some(And),
                prev_opcode: Some(And),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::WrongOperation(Or),
        );
        push(
            "10-slt-after-sub",
            "SLT right after a SUB inverts its verdict",
            Trigger {
                opcode: Some(Slt),
                prev_opcode: Some(Sub),
                ..Trigger::default()
            },
            Effect::XorResult(0x1),
        );
        push(
            "11-addi-raw",
            "ADDI depending on the previous destination adds an extra one",
            Trigger {
                opcode: Some(Addi),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::AddToResult(1),
        );
        push(
            "12-sw-after-add",
            "store following an ADD writes to a shifted address",
            Trigger {
                opcode: Some(Sw),
                prev_opcode: Some(Add),
                ..Trigger::default()
            },
            Effect::AddressOffset(4),
        );
        push(
            "13-mul-after-mul",
            "back-to-back multiplies corrupt the second product",
            Trigger {
                opcode: Some(Mul),
                prev_opcode: Some(Mul),
                ..Trigger::default()
            },
            Effect::XorResult(0x10),
        );
        push(
            "14-sra-raw",
            "SRA consuming the previous result loses the sign fill",
            Trigger {
                opcode: Some(Sra),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::WrongOperation(Srl),
        );
        push(
            "15-xori-after-xori",
            "consecutive XORIs: the second one turns into ORI",
            Trigger {
                opcode: Some(Xori),
                prev_opcode: Some(Xori),
                ..Trigger::default()
            },
            Effect::WrongOperation(Ori),
        );
        push(
            "16-sltu-after-writer",
            "SLTU right after any register write reads its first operand as zero",
            Trigger {
                opcode: Some(Sltu),
                prev_writes_reg: true,
                ..Trigger::default()
            },
            Effect::ZeroFirstOperand,
        );
        push(
            "17-srl-two-back",
            "SRL two instructions after an ADD drops its write-back",
            Trigger {
                opcode: Some(Srl),
                prev2_opcode: Some(Add),
                ..Trigger::default()
            },
            Effect::DropWriteback,
        );
        push(
            "18-andi-raw-xor",
            "ANDI depending on an XOR result flips bit 5",
            Trigger {
                opcode: Some(Andi),
                prev_opcode: Some(Xor),
                raw_on_prev_rd: true,
                ..Trigger::default()
            },
            Effect::XorResult(0x20),
        );
        push(
            "19-lui-after-lui",
            "two LUIs in a row: the second value is off by 0x1000",
            Trigger {
                opcode: Some(Lui),
                prev_opcode: Some(Lui),
                ..Trigger::default()
            },
            Effect::AddToResult(0x1000),
        );
        push(
            "20-waw-after-mul",
            "write-after-write with a multiply in front drops the younger write",
            Trigger {
                waw_on_prev_rd: true,
                prev_opcode: Some(Mul),
                ..Trigger::default()
            },
            Effect::DropWriteback,
        );
        bugs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Reg;

    #[test]
    fn table1_matches_the_paper_rows() {
        let bugs = Mutation::table1();
        assert_eq!(bugs.len(), 13);
        let targets: Vec<Opcode> = bugs.iter().filter_map(|b| b.target_opcode()).collect();
        assert_eq!(
            targets,
            vec![
                Opcode::Add,
                Opcode::Sub,
                Opcode::Xor,
                Opcode::Or,
                Opcode::And,
                Opcode::Slt,
                Opcode::Sltu,
                Opcode::Sra,
                Opcode::Mulh,
                Opcode::Xori,
                Opcode::Slli,
                Opcode::Srai,
                Opcode::Sw,
            ]
        );
        assert!(bugs
            .iter()
            .all(|b| b.class() == BugClass::SingleInstruction));
    }

    #[test]
    fn figure4_bugs_are_multiple_instruction() {
        let bugs = Mutation::figure4();
        assert_eq!(bugs.len(), 20);
        assert!(bugs
            .iter()
            .all(|b| b.class() == BugClass::MultipleInstruction));
        let mut names: Vec<&str> = bugs.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "bug names must be unique");
    }

    #[test]
    fn trigger_on_opcode_only_matches_that_opcode() {
        let t = Trigger::on_opcode(Opcode::Add);
        let add = Instr::add(Reg(1), Reg(2), Reg(3));
        let sub = Instr::sub(Reg(1), Reg(2), Reg(3));
        assert!(t.fires(&add, None, None));
        assert!(!t.fires(&sub, None, None));
        assert!(!t.uses_history());
    }

    #[test]
    fn raw_trigger_requires_the_dependency() {
        let t = Trigger {
            opcode: Some(Opcode::Add),
            raw_on_prev_rd: true,
            ..Trigger::default()
        };
        let producer = Instr::add(Reg(5), Reg(1), Reg(2));
        let dependent = Instr::add(Reg(6), Reg(5), Reg(2));
        let independent = Instr::add(Reg(6), Reg(7), Reg(2));
        assert!(t.fires(&dependent, Some(&producer), None));
        assert!(!t.fires(&independent, Some(&producer), None));
        assert!(
            !t.fires(&dependent, None, None),
            "no history, no dependency"
        );
        // producer writing x0 does not create a dependency
        let to_zero = Instr::add(Reg(0), Reg(1), Reg(2));
        let reads_zero = Instr::add(Reg(6), Reg(0), Reg(2));
        assert!(!t.fires(&reads_zero, Some(&to_zero), None));
        assert!(t.uses_history());
    }

    #[test]
    fn waw_and_prev2_triggers() {
        let waw = Trigger {
            waw_on_prev_rd: true,
            ..Trigger::default()
        };
        let first = Instr::add(Reg(4), Reg(1), Reg(2));
        let second = Instr::sub(Reg(4), Reg(3), Reg(1));
        let other = Instr::sub(Reg(5), Reg(3), Reg(1));
        assert!(waw.fires(&second, Some(&first), None));
        assert!(!waw.fires(&other, Some(&first), None));

        let t2 = Trigger {
            opcode: Some(Opcode::Srl),
            prev2_opcode: Some(Opcode::Add),
            ..Trigger::default()
        };
        let srl = Instr::reg_reg(Opcode::Srl, Reg(1), Reg(2), Reg(3));
        assert!(t2.fires(&srl, Some(&second), Some(&first)));
        assert!(!t2.fires(&srl, Some(&first), Some(&second)));
    }

    #[test]
    fn prev_writes_reg_trigger() {
        let t = Trigger {
            prev_writes_reg: true,
            ..Trigger::default()
        };
        let producer = Instr::add(Reg(5), Reg(1), Reg(2));
        let store = Instr::sw(Reg(1), Reg(2), 0);
        let any = Instr::add(Reg(6), Reg(7), Reg(8));
        assert!(t.fires(&any, Some(&producer), None));
        assert!(
            !t.fires(&any, Some(&store), None),
            "stores do not write registers"
        );
    }
}
