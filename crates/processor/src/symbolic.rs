//! The symbolic processor model (design under verification).
//!
//! [`SymbolicProcessor::build`] produces a [`TransitionSystem`] describing the
//! architectural datapath of the core: a 32-entry register file, a small data
//! memory, a committed-instruction history window and a single-cycle commit
//! interface.  Injected [`Mutation`]s are compiled directly into the
//! next-state functions, exactly as the paper injects logic bugs into the
//! RIDECORE RTL before translating it to BTOR2.
//!
//! The QED modules of the `sepe-sqed` crate extend the returned transition
//! system with the dispatch queue, commit counters and the universal
//! property, and constrain the [`InstrPort`] inputs to legal QED instruction
//! streams.

use std::collections::HashMap;

use sepe_isa::{Instr, Opcode, OperandKind};
use sepe_smt::{Sort, TermId, TermManager};
use sepe_tsys::TransitionSystem;

use crate::config::ProcessorConfig;
use crate::datapath::{
    opcode_in, opcode_index, opcode_is, opcode_result, result_mux, select_mem, select_reg,
    writes_rd_term, OPCODE_BITS, REG_BITS,
};
use crate::mutation::{Effect, Mutation, Trigger};

/// The symbolic instruction port: the per-cycle input of the model.
///
/// `imm` carries the *materialised* immediate operand (sign-extended I-type
/// immediate, or the already-shifted `LUI` value); the binary instruction
/// decoder is abstracted away, which does not change the architectural
/// behaviour being verified (see `DESIGN.md`).
#[derive(Debug, Clone, Copy)]
pub struct InstrPort {
    /// Whether an instruction commits this cycle (boolean).
    pub valid: TermId,
    /// Opcode selector (dense index into [`Opcode::ALL`], 5 bits).
    pub op: TermId,
    /// Destination register index (5 bits).
    pub rd: TermId,
    /// First source register index (5 bits).
    pub rs1: TermId,
    /// Second source register index (5 bits).
    pub rs2: TermId,
    /// Materialised immediate operand (XLEN bits).
    pub imm: TermId,
    /// Memory bank select (1 bit): memory accesses land in the lower half of
    /// the data memory when 0 and in the upper half when 1.  The QED modules
    /// drive this to keep original and duplicate/equivalent address spaces
    /// disjoint, exactly like the EDDI-V memory split.
    pub bank: TermId,
}

/// One slot of the committed-instruction history window (state variables).
#[derive(Debug, Clone, Copy)]
pub struct HistorySlot {
    /// Whether the slot holds a committed instruction.
    pub valid: TermId,
    /// Its opcode selector.
    pub op: TermId,
    /// Its destination register.
    pub rd: TermId,
    /// Whether it architecturally wrote a register.
    pub writes_reg: TermId,
}

/// The symbolic processor: transition system plus handles to its interface.
#[derive(Debug, Clone)]
pub struct SymbolicProcessor {
    /// The model configuration.
    pub config: ProcessorConfig,
    /// The transition system (extended further by the QED modules).
    pub ts: TransitionSystem,
    /// The instruction input port.
    pub port: InstrPort,
    /// Current-state register-file variables (`regs[0]` is the hard-wired
    /// zero register).
    pub regs: Vec<TermId>,
    /// Current-state data-memory word variables.
    pub mem: Vec<TermId>,
    /// History window, most recent first.
    pub history: Vec<HistorySlot>,
    /// Derived: an instruction commits this cycle (equals `port.valid`).
    pub commit_valid: TermId,
    /// Derived: the committing instruction architecturally writes a register
    /// (independent of injected write-back bugs, used by the QED counters).
    pub nominal_writes_reg: TermId,
    /// Derived: the value written back / stored this cycle (after mutation).
    pub result: TermId,
}

/// A catalogue entry compiled into a shared datapath: the mutation plus the
/// activation literal guarding its trigger.
///
/// The activation term is a free boolean variable that is deliberately *not*
/// registered as a transition-system input or state variable: the unroller
/// only creates per-frame copies for registered variables, so the literal is
/// *rigid* — the same term (and later the same CNF variable) in every frame.
/// Asserting it as a [`check_assuming`](sepe_smt::IncrementalSolver::check_assuming)
/// assumption therefore switches the entry's mutated gate on or off across
/// the whole unrolling at once.
#[derive(Debug, Clone)]
pub struct ActivatedMutation {
    /// The catalogue entry.
    pub mutation: Mutation,
    /// Its rigid activation literal.
    pub activation: TermId,
}

impl SymbolicProcessor {
    /// Builds the model, optionally with an injected bug.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build(
        tm: &mut TermManager,
        config: &ProcessorConfig,
        mutation: Option<&Mutation>,
    ) -> Self {
        let entries: Vec<(Option<TermId>, &Mutation)> =
            mutation.into_iter().map(|m| (None, m)).collect();
        Self::build_inner(tm, config, &entries)
    }

    /// Builds the model with a whole mutation *catalogue* compiled in, each
    /// entry's mutated gate guarded by a fresh activation literal.
    ///
    /// With every activation literal assumed false the datapath is exactly
    /// the clean design; assuming entry `i`'s literal true (and the others
    /// false) yields exactly the design with bug `i` injected.  All entries
    /// share the register file, memory, history window and result mux, so
    /// one unrolling encodes the whole catalogue once.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build_catalogue(
        tm: &mut TermManager,
        config: &ProcessorConfig,
        mutations: &[Mutation],
    ) -> (Self, Vec<ActivatedMutation>) {
        let activations: Vec<TermId> = mutations
            .iter()
            .enumerate()
            .map(|(i, m)| tm.var(&format!("act{i:02}_{}", m.name), Sort::Bool))
            .collect();
        let entries: Vec<(Option<TermId>, &Mutation)> = mutations
            .iter()
            .zip(&activations)
            .map(|(m, &act)| (Some(act), m))
            .collect();
        let proc = Self::build_inner(tm, config, &entries);
        let activated = mutations
            .iter()
            .zip(activations)
            .map(|(m, activation)| ActivatedMutation {
                mutation: m.clone(),
                activation,
            })
            .collect();
        (proc, activated)
    }

    /// The shared build: each entry contributes a guarded effect at the
    /// mutation sites.  An entry without an activation term is guarded by its
    /// bare trigger (the classic single-bug build); with one, by
    /// `activation ∧ trigger`.
    fn build_inner(
        tm: &mut TermManager,
        config: &ProcessorConfig,
        entries: &[(Option<TermId>, &Mutation)],
    ) -> Self {
        config.validate();
        let xlen = config.xlen;
        let mut ts = TransitionSystem::new();

        // ------------------------------------------------------------------
        // Inputs: the instruction port.
        // ------------------------------------------------------------------
        let port = InstrPort {
            valid: tm.var("in_valid", Sort::Bool),
            op: tm.var("in_op", Sort::BitVec(OPCODE_BITS)),
            rd: tm.var("in_rd", Sort::BitVec(REG_BITS)),
            rs1: tm.var("in_rs1", Sort::BitVec(REG_BITS)),
            rs2: tm.var("in_rs2", Sort::BitVec(REG_BITS)),
            imm: tm.var("in_imm", Sort::BitVec(xlen)),
            bank: tm.var("in_bank", Sort::BitVec(1)),
        };
        for input in [
            port.valid, port.op, port.rd, port.rs1, port.rs2, port.imm, port.bank,
        ] {
            ts.add_input(tm, input);
        }
        // Only opcodes of the allowed universe may appear.
        let legal_op = opcode_in(tm, port.op, &config.allowed_opcodes);
        ts.add_constraint(legal_op);

        // ------------------------------------------------------------------
        // State: register file, data memory, history window.
        // ------------------------------------------------------------------
        let regs: Vec<TermId> = (0..32)
            .map(|i| tm.var(&format!("reg{i:02}"), Sort::BitVec(xlen)))
            .collect();
        let mem: Vec<TermId> = (0..config.mem_words)
            .map(|w| tm.var(&format!("mem{w:02}"), Sort::BitVec(xlen)))
            .collect();
        let mut history = Vec::new();
        for d in 0..config.history_depth {
            history.push(HistorySlot {
                valid: tm.var(&format!("hist{d}_valid"), Sort::Bool),
                op: tm.var(&format!("hist{d}_op"), Sort::BitVec(OPCODE_BITS)),
                rd: tm.var(&format!("hist{d}_rd"), Sort::BitVec(REG_BITS)),
                writes_reg: tm.var(&format!("hist{d}_writes"), Sort::Bool),
            });
        }

        // ------------------------------------------------------------------
        // Datapath.
        // ------------------------------------------------------------------
        let rs1_raw = select_reg(tm, &regs, port.rs1);
        let rs2_val = select_reg(tm, &regs, port.rs2);

        // Guarded effects, in catalogue order.  A lone unguarded entry folds
        // to exactly the classic single-bug terms; guarded entries chain
        // `ite`s whose conditions are mutually exclusive under the batched
        // detector's one-hot activation assumptions.
        let guarded: Vec<(TermId, Effect)> = entries
            .iter()
            .map(|&(activation, m)| {
                let trigger =
                    trigger_term(tm, &m.trigger, &port, &history, &config.allowed_opcodes);
                let guard = match activation {
                    Some(act) => tm.and(act, trigger),
                    None => trigger,
                };
                (guard, m.effect)
            })
            .collect();

        // Operand-level effects.
        let rs1_val = guarded
            .iter()
            .fold(rs1_raw, |acc, &(guard, effect)| match effect {
                Effect::ZeroFirstOperand => {
                    let zero = tm.zero(xlen);
                    tm.ite(guard, zero, acc)
                }
                Effect::SwapOperands => tm.ite(guard, rs2_val, acc),
                _ => acc,
            });

        // Effective address and memory read (LW/SW only, but computed
        // unconditionally and muxed).  The word index combines the bank
        // select (upper half vs lower half) with the low address bits.
        let mut addr = tm.bv_add(rs1_val, port.imm);
        for &(guard, effect) in &guarded {
            match effect {
                Effect::AddressOffset(off) => {
                    let offset = tm.bv_const(off, xlen);
                    let shifted = tm.bv_add(addr, offset);
                    addr = tm.ite(guard, shifted, addr);
                }
                Effect::IgnoreMemOffset => {
                    addr = tm.ite(guard, rs1_val, addr);
                }
                _ => {}
            }
        }
        let half_bits = (config.mem_words / 2).trailing_zeros();
        let low_index = tm.bv_extract(addr, 2 + half_bits - 1, 2);
        let word_index = tm.bv_concat(port.bank, low_index);
        let index_bits = config.mem_words.trailing_zeros();
        debug_assert_eq!(tm.width(word_index), index_bits);
        let mem_read = select_mem(tm, &mem, word_index);

        // Result mux over the allowed opcodes, then result-level effects.
        let nominal_result = result_mux(
            tm,
            &config.allowed_opcodes,
            port.op,
            rs1_val,
            rs2_val,
            port.imm,
            mem_read,
        );
        let result = guarded
            .iter()
            .fold(nominal_result, |acc, &(guard, effect)| match effect {
                Effect::XorResult(c) => {
                    let k = tm.bv_const(c, xlen);
                    let corrupted = tm.bv_xor(nominal_result, k);
                    tm.ite(guard, corrupted, acc)
                }
                Effect::AddToResult(c) => {
                    let k = tm.bv_const(c, xlen);
                    let corrupted = tm.bv_add(nominal_result, k);
                    tm.ite(guard, corrupted, acc)
                }
                Effect::WrongOperation(op2) => {
                    let wrong = opcode_result(tm, op2, rs1_val, rs2_val, port.imm, mem_read);
                    tm.ite(guard, wrong, acc)
                }
                _ => acc,
            });

        // Write-back and store enables.
        let writes = writes_rd_term(tm, port.op, &config.allowed_opcodes);
        let rd_nonzero = {
            let zero = tm.bv_const(0, REG_BITS);
            tm.neq(port.rd, zero)
        };
        let nominal_writes_reg = {
            let a = tm.and(port.valid, writes);
            tm.and(a, rd_nonzero)
        };
        let write_enable = guarded
            .iter()
            .fold(nominal_writes_reg, |acc, &(guard, effect)| match effect {
                Effect::DropWriteback => {
                    let not_trig = tm.not(guard);
                    tm.and(acc, not_trig)
                }
                _ => acc,
            });
        let is_store = opcode_is(tm, port.op, Opcode::Sw);
        let store_enable = tm.and(port.valid, is_store);

        // ------------------------------------------------------------------
        // Next-state functions.
        // ------------------------------------------------------------------
        let zero_xlen = tm.zero(xlen);
        for (i, &reg) in regs.iter().enumerate() {
            if i == 0 {
                ts.add_state_var(tm, reg, Some(zero_xlen), zero_xlen);
                continue;
            }
            let idx = tm.bv_const(i as u64, REG_BITS);
            let hit = tm.eq(port.rd, idx);
            let cond = tm.and(write_enable, hit);
            let next = tm.ite(cond, result, reg);
            ts.add_state_var(tm, reg, Some(zero_xlen), next);
        }
        for (w, &m) in mem.iter().enumerate() {
            let idx = tm.bv_const(w as u64, index_bits);
            let hit = tm.eq(word_index, idx);
            let cond = tm.and(store_enable, hit);
            let next = tm.ite(cond, result, m);
            ts.add_state_var(tm, m, Some(zero_xlen), next);
        }

        // History shift register: slot 0 is the most recently committed
        // instruction; older slots shift down only when a commit happens.
        let committed_writes = tm.and(writes, rd_nonzero);
        let fls = tm.fls();
        let tru = tm.tru();
        let zero_op = tm.bv_const(0, OPCODE_BITS);
        let zero_rd = tm.bv_const(0, REG_BITS);
        for (d, slot) in history.iter().enumerate() {
            let (new_valid, new_op, new_rd, new_writes) = if d == 0 {
                (tru, port.op, port.rd, committed_writes)
            } else {
                let prev = &history[d - 1];
                (prev.valid, prev.op, prev.rd, prev.writes_reg)
            };
            let next_valid = tm.ite(port.valid, new_valid, slot.valid);
            let next_op = tm.ite(port.valid, new_op, slot.op);
            let next_rd = tm.ite(port.valid, new_rd, slot.rd);
            let next_writes = tm.ite(port.valid, new_writes, slot.writes_reg);
            ts.add_state_var(tm, slot.valid, Some(fls), next_valid);
            ts.add_state_var(tm, slot.op, Some(zero_op), next_op);
            ts.add_state_var(tm, slot.rd, Some(zero_rd), next_rd);
            ts.add_state_var(tm, slot.writes_reg, Some(fls), next_writes);
        }

        SymbolicProcessor {
            config: config.clone(),
            ts,
            port,
            regs,
            mem,
            history,
            commit_valid: port.valid,
            nominal_writes_reg,
            result,
        }
    }

    /// The materialised immediate operand value an instruction carries on the
    /// port, masked to the model's XLEN.
    pub fn materialised_imm(&self, instr: &Instr) -> u64 {
        materialise_imm(instr, self.config.xlen)
    }

    /// The port input assignment encoding one concrete instruction (for
    /// simulation and witness replay).
    pub fn port_inputs(&self, instr: &Instr) -> HashMap<TermId, u64> {
        self.port_inputs_banked(instr, false)
    }

    /// The port input assignment for one instruction routed to the given
    /// memory bank.
    pub fn port_inputs_banked(&self, instr: &Instr, bank: bool) -> HashMap<TermId, u64> {
        HashMap::from([
            (self.port.valid, 1),
            (self.port.op, opcode_index(instr.opcode)),
            (self.port.rd, u64::from(instr.rd.0)),
            (self.port.rs1, u64::from(instr.rs1.0)),
            (self.port.rs2, u64::from(instr.rs2.0)),
            (self.port.imm, self.materialised_imm(instr)),
            (self.port.bank, u64::from(bank)),
        ])
    }

    /// The port input assignment for an idle (no-commit) cycle.
    pub fn idle_inputs(&self) -> HashMap<TermId, u64> {
        HashMap::from([
            (self.port.valid, 0),
            (self.port.op, 0),
            (self.port.rd, 0),
            (self.port.rs1, 0),
            (self.port.rs2, 0),
            (self.port.imm, 0),
            (self.port.bank, 0),
        ])
    }
}

/// Computes the materialised immediate operand for `instr` at a given XLEN.
pub fn materialise_imm(instr: &Instr, xlen: u32) -> u64 {
    let raw: u64 = match instr.opcode.operand_kind() {
        OperandKind::Upper => ((instr.imm as u32) << 12) as u64,
        _ => instr.imm as i64 as u64,
    };
    sepe_smt::sort::mask(raw, xlen)
}

/// Builds the boolean trigger term of a mutation over the port and history.
fn trigger_term(
    tm: &mut TermManager,
    trigger: &Trigger,
    port: &InstrPort,
    history: &[HistorySlot],
    allowed: &[Opcode],
) -> TermId {
    let mut cond = tm.tru();
    if let Some(op) = trigger.opcode {
        let c = opcode_is(tm, port.op, op);
        cond = tm.and(cond, c);
    }
    if let Some(op) = trigger.prev_opcode {
        let slot = &history[0];
        let is = opcode_is(tm, slot.op, op);
        let c = tm.and(slot.valid, is);
        cond = tm.and(cond, c);
    }
    if let Some(op) = trigger.prev2_opcode {
        assert!(history.len() >= 2, "trigger needs history_depth >= 2");
        let slot = &history[1];
        let is = opcode_is(tm, slot.op, op);
        let c = tm.and(slot.valid, is);
        cond = tm.and(cond, c);
    }
    if trigger.raw_on_prev_rd {
        let slot = &history[0];
        let dep = tm.eq(port.rs1, slot.rd);
        let c = tm.and(slot.valid, slot.writes_reg);
        let c = tm.and(c, dep);
        cond = tm.and(cond, c);
    }
    if trigger.waw_on_prev_rd {
        let slot = &history[0];
        let same_rd = tm.eq(port.rd, slot.rd);
        let cur_writes = writes_rd_term(tm, port.op, allowed);
        let c = tm.and(slot.valid, slot.writes_reg);
        let c = tm.and(c, same_rd);
        let c = tm.and(c, cur_writes);
        cond = tm.and(cond, c);
    }
    if trigger.prev_writes_reg {
        let slot = &history[0];
        let c = tm.and(slot.valid, slot.writes_reg);
        cond = tm.and(cond, c);
    }
    cond
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Reg;

    fn simulate_program(
        config: &ProcessorConfig,
        mutation: Option<&Mutation>,
        program: &[Instr],
    ) -> (TermManager, SymbolicProcessor, Vec<HashMap<TermId, u64>>) {
        let mut tm = TermManager::new();
        let proc = SymbolicProcessor::build(&mut tm, config, mutation);
        let inputs: Vec<HashMap<TermId, u64>> =
            program.iter().map(|i| proc.port_inputs(i)).collect();
        let trace = proc.ts.simulate(&tm, &inputs);
        (tm, proc, trace)
    }

    #[test]
    fn executes_a_simple_program_like_the_golden_model() {
        let config = ProcessorConfig::default();
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 5),
            Instr::addi(Reg(2), Reg(1), 6),
            Instr::add(Reg(3), Reg(1), Reg(2)),
            Instr::sub(Reg(4), Reg(3), Reg(1)),
            Instr::reg_imm(Opcode::Slli, Reg(5), Reg(4), 2),
        ];
        let (_tm, proc, trace) = simulate_program(&config, None, &program);
        let last = trace.last().expect("trace");
        let mut golden = sepe_isa::exec::ArchState::new();
        golden.run(&program);
        for r in 1..6u8 {
            assert_eq!(
                last[&proc.regs[r as usize]],
                u64::from(golden.reg(Reg(r))),
                "register x{r} mismatch"
            );
        }
        // x0 stays zero even if targeted
        assert_eq!(last[&proc.regs[0]], 0);
    }

    #[test]
    fn memory_stores_and_loads_roundtrip() {
        let config = ProcessorConfig::default();
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 8),
            Instr::addi(Reg(2), Reg(0), 1234),
            Instr::sw(Reg(1), Reg(2), 4),
            Instr::lw(Reg(3), Reg(1), 4),
        ];
        let (_tm, proc, trace) = simulate_program(&config, None, &program);
        let last = trace.last().expect("trace");
        assert_eq!(last[&proc.regs[3]], 1234);
        // address 12 -> word 3
        assert_eq!(last[&proc.mem[3]], 1234);
    }

    #[test]
    fn single_instruction_bug_corrupts_only_its_opcode() {
        let config = ProcessorConfig::default();
        let bug = &Mutation::table1()[0]; // ADD off by one
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 10),
            Instr::addi(Reg(2), Reg(0), 20),
            Instr::add(Reg(3), Reg(1), Reg(2)),
            Instr::sub(Reg(4), Reg(2), Reg(1)),
        ];
        let (_tm, proc, trace) = simulate_program(&config, Some(bug), &program);
        let last = trace.last().expect("trace");
        assert_eq!(last[&proc.regs[3]], 31, "buggy ADD is off by one");
        assert_eq!(last[&proc.regs[4]], 10, "SUB is unaffected");
    }

    #[test]
    fn multi_instruction_bug_requires_its_history_pattern() {
        let config = ProcessorConfig::default();
        // multi-01: ADD raw-dependent on an immediately preceding ADD reads zero
        let bug = Mutation::figure4()
            .into_iter()
            .find(|b| b.name == "multi-01-raw-add-add")
            .expect("bug exists");
        // pattern present: add then dependent add
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 7),
            Instr::add(Reg(2), Reg(1), Reg(1)),
            Instr::add(Reg(3), Reg(2), Reg(1)),
        ];
        let (_tm, proc, trace) = simulate_program(&config, Some(&bug), &program);
        let last = trace.last().expect("trace");
        // the dependent ADD reads rs1 (=x2) as zero: x3 = 0 + 7
        assert_eq!(last[&proc.regs[3]], 7);

        // pattern broken by an intervening XOR: result is correct
        let program_ok = vec![
            Instr::addi(Reg(1), Reg(0), 7),
            Instr::add(Reg(2), Reg(1), Reg(1)),
            Instr::reg_reg(Opcode::Xor, Reg(5), Reg(1), Reg(1)),
            Instr::add(Reg(3), Reg(2), Reg(1)),
        ];
        let (_tm2, proc2, trace2) = simulate_program(&config, Some(&bug), &program_ok);
        let last2 = trace2.last().expect("trace");
        assert_eq!(last2[&proc2.regs[3]], 21);
    }

    #[test]
    fn reduced_width_masks_values() {
        let config = ProcessorConfig {
            xlen: 8,
            mem_words: 4,
            ..ProcessorConfig::default()
        };
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 200),
            Instr::addi(Reg(2), Reg(0), 100),
            Instr::add(Reg(3), Reg(1), Reg(2)),
        ];
        let (_tm, proc, trace) = simulate_program(&config, None, &program);
        let last = trace.last().expect("trace");
        assert_eq!(last[&proc.regs[3]], (200 + 100) % 256);
    }

    #[test]
    fn materialised_immediates() {
        assert_eq!(
            materialise_imm(&Instr::addi(Reg(1), Reg(0), -1), 32),
            0xffff_ffff
        );
        assert_eq!(materialise_imm(&Instr::addi(Reg(1), Reg(0), -1), 8), 0xff);
        assert_eq!(
            materialise_imm(&Instr::lui(Reg(1), 0x12345), 32),
            0x1234_5000
        );
        assert_eq!(materialise_imm(&Instr::lw(Reg(1), Reg(2), 16), 32), 16);
    }

    #[test]
    fn idle_cycles_leave_state_unchanged() {
        let mut tm = TermManager::new();
        let config = ProcessorConfig::tiny();
        let proc = SymbolicProcessor::build(&mut tm, &config, None);
        let inputs = vec![
            proc.port_inputs(&Instr::addi(Reg(1), Reg(0), 3)),
            proc.idle_inputs(),
            proc.idle_inputs(),
        ];
        let trace = proc.ts.simulate(&tm, &inputs);
        assert_eq!(trace[1][&proc.regs[1]], 3);
        assert_eq!(trace[3][&proc.regs[1]], 3);
    }
}
