//! Symbolic datapath helpers shared by the processor model and the QED
//! modules: opcode selectors, register-file muxes and the ALU result mux.

use sepe_isa::{semantics, Opcode};
use sepe_smt::{Sort, TermId, TermManager};

/// Width of the opcode selector field on the symbolic instruction port.
pub const OPCODE_BITS: u32 = 5;
/// Width of a register-index field.
pub const REG_BITS: u32 = 5;

/// The dense index of an opcode on the symbolic instruction port.
pub fn opcode_index(op: Opcode) -> u64 {
    Opcode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("opcode is part of the supported subset") as u64
}

/// The opcode encoded by a dense index, if valid.
pub fn opcode_from_index(index: u64) -> Option<Opcode> {
    Opcode::ALL.get(index as usize).copied()
}

/// A boolean term stating that the opcode selector `op_term` encodes `op`.
pub fn opcode_is(tm: &mut TermManager, op_term: TermId, op: Opcode) -> TermId {
    let c = tm.bv_const(opcode_index(op), OPCODE_BITS);
    tm.eq(op_term, c)
}

/// A boolean term stating that the opcode selector is one of `ops`.
pub fn opcode_in(tm: &mut TermManager, op_term: TermId, ops: &[Opcode]) -> TermId {
    let mut acc = tm.fls();
    for &op in ops {
        let hit = opcode_is(tm, op_term, op);
        acc = tm.or(acc, hit);
    }
    acc
}

/// A register-index constant term.
pub fn reg_const(tm: &mut TermManager, index: u8) -> TermId {
    tm.bv_const(u64::from(index), REG_BITS)
}

/// Reads the register file: an if-then-else chain selecting `regs[idx]`.
///
/// `regs[0]` is expected to be the constant-zero state variable, so no
/// special case is needed here.
pub fn select_reg(tm: &mut TermManager, regs: &[TermId], idx: TermId) -> TermId {
    debug_assert_eq!(regs.len(), 32);
    let mut out = regs[0];
    for (i, &r) in regs.iter().enumerate().skip(1) {
        let c = reg_const(tm, i as u8);
        let hit = tm.eq(idx, c);
        out = tm.ite(hit, r, out);
    }
    out
}

/// Reads the data memory: selects `mem[word_index]`.
pub fn select_mem(tm: &mut TermManager, mem: &[TermId], word_index: TermId) -> TermId {
    let bits = tm.width(word_index);
    let mut out = mem[0];
    for (i, &m) in mem.iter().enumerate().skip(1) {
        let c = tm.bv_const(i as u64, bits);
        let hit = tm.eq(word_index, c);
        out = tm.ite(hit, m, out);
    }
    out
}

/// Whether an opcode writes a destination register, as a term over the
/// opcode selector, restricted to the `allowed` universe.
pub fn writes_rd_term(tm: &mut TermManager, op_term: TermId, allowed: &[Opcode]) -> TermId {
    let writers: Vec<Opcode> = allowed.iter().copied().filter(|o| o.writes_rd()).collect();
    opcode_in(tm, op_term, &writers)
}

/// The value an instruction writes back (or stores), as a mux over the
/// allowed opcodes.
///
/// * `rs1_val` / `rs2_val` — effective source operand values,
/// * `imm` — the materialised immediate operand (already sign-extended /
///   shifted), used by I-type, shift-immediate and `LUI` instructions,
/// * `mem_read` — the value read from data memory at the effective address
///   (used by `LW`).
///
/// `SW` contributes `rs2_val` (the value to store); callers gate the register
/// write-back with [`writes_rd_term`] so the value is only routed to memory.
pub fn result_mux(
    tm: &mut TermManager,
    allowed: &[Opcode],
    op_term: TermId,
    rs1_val: TermId,
    rs2_val: TermId,
    imm: TermId,
    mem_read: TermId,
) -> TermId {
    let width = tm.width(rs1_val);
    let mut out = tm.zero(width);
    for &op in allowed {
        let value = opcode_result(tm, op, rs1_val, rs2_val, imm, mem_read);
        let hit = opcode_is(tm, op_term, op);
        out = tm.ite(hit, value, out);
    }
    out
}

/// The result of one specific opcode over the given operand terms.
pub fn opcode_result(
    tm: &mut TermManager,
    op: Opcode,
    rs1_val: TermId,
    rs2_val: TermId,
    imm: TermId,
    mem_read: TermId,
) -> TermId {
    use sepe_isa::OperandKind::*;
    match op {
        Opcode::Lw => mem_read,
        Opcode::Sw => rs2_val,
        Opcode::Lui => imm,
        _ => match op.operand_kind() {
            RegReg => semantics::alu_result(tm, op, rs1_val, rs2_val),
            RegImm | RegShamt => semantics::alu_result(tm, op, rs1_val, imm),
            Upper | Load | Store => unreachable!("handled above"),
        },
    }
}

/// Creates the instruction-port field sorts for a given data-path width.
pub fn port_sorts(xlen: u32) -> (Sort, Sort, Sort) {
    (
        Sort::BitVec(OPCODE_BITS),
        Sort::BitVec(REG_BITS),
        Sort::BitVec(xlen),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::concrete;
    use std::collections::HashMap;

    #[test]
    fn opcode_indices_roundtrip() {
        for &op in &Opcode::ALL {
            let idx = opcode_index(op);
            assert_eq!(opcode_from_index(idx), Some(op));
        }
        assert_eq!(opcode_from_index(26), None);
        assert!(opcode_index(Opcode::Sw) < (1 << OPCODE_BITS));
    }

    #[test]
    fn opcode_is_and_in_evaluate_correctly() {
        let mut tm = TermManager::new();
        let op = tm.var("op", Sort::BitVec(OPCODE_BITS));
        let is_add = opcode_is(&mut tm, op, Opcode::Add);
        let in_set = opcode_in(&mut tm, op, &[Opcode::Add, Opcode::Sub]);
        let env_add: HashMap<_, _> = [(op, opcode_index(Opcode::Add))].into_iter().collect();
        let env_xor: HashMap<_, _> = [(op, opcode_index(Opcode::Xor))].into_iter().collect();
        assert_eq!(concrete::eval(&tm, is_add, &env_add), 1);
        assert_eq!(concrete::eval(&tm, is_add, &env_xor), 0);
        assert_eq!(concrete::eval(&tm, in_set, &env_add), 1);
        assert_eq!(concrete::eval(&tm, in_set, &env_xor), 0);
    }

    #[test]
    fn select_reg_picks_the_indexed_register() {
        let mut tm = TermManager::new();
        let regs: Vec<TermId> = (0..32)
            .map(|i| tm.var(&format!("r{i}"), Sort::BitVec(8)))
            .collect();
        let idx = tm.var("idx", Sort::BitVec(REG_BITS));
        let sel = select_reg(&mut tm, &regs, idx);
        let mut env: HashMap<_, _> = regs
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u64))
            .collect();
        for pick in [0u64, 1, 17, 31] {
            env.insert(idx, pick);
            assert_eq!(concrete::eval(&tm, sel, &env), pick);
        }
    }

    #[test]
    fn writes_rd_excludes_stores() {
        let mut tm = TermManager::new();
        let op = tm.var("op", Sort::BitVec(OPCODE_BITS));
        let w = writes_rd_term(&mut tm, op, &Opcode::ALL);
        let env_sw: HashMap<_, _> = [(op, opcode_index(Opcode::Sw))].into_iter().collect();
        let env_lw: HashMap<_, _> = [(op, opcode_index(Opcode::Lw))].into_iter().collect();
        assert_eq!(concrete::eval(&tm, w, &env_sw), 0);
        assert_eq!(concrete::eval(&tm, w, &env_lw), 1);
    }

    #[test]
    fn result_mux_matches_per_opcode_semantics() {
        let mut tm = TermManager::new();
        let op = tm.var("op", Sort::BitVec(OPCODE_BITS));
        let a = tm.var("a", Sort::BitVec(16));
        let b = tm.var("b", Sort::BitVec(16));
        let imm = tm.var("imm", Sort::BitVec(16));
        let mr = tm.var("mr", Sort::BitVec(16));
        let allowed = [
            Opcode::Add,
            Opcode::Xori,
            Opcode::Lw,
            Opcode::Sw,
            Opcode::Lui,
        ];
        let mux = result_mux(&mut tm, &allowed, op, a, b, imm, mr);
        let base: HashMap<_, _> = [(a, 100u64), (b, 7u64), (imm, 0xff00u64), (mr, 0xabcdu64)]
            .into_iter()
            .collect();
        let with_op = |env: &HashMap<_, _>, o: Opcode| {
            let mut e = env.clone();
            e.insert(op, opcode_index(o));
            e
        };
        assert_eq!(concrete::eval(&tm, mux, &with_op(&base, Opcode::Add)), 107);
        assert_eq!(
            concrete::eval(&tm, mux, &with_op(&base, Opcode::Xori)),
            100 ^ 0xff00
        );
        assert_eq!(
            concrete::eval(&tm, mux, &with_op(&base, Opcode::Lw)),
            0xabcd
        );
        assert_eq!(concrete::eval(&tm, mux, &with_op(&base, Opcode::Sw)), 7);
        assert_eq!(
            concrete::eval(&tm, mux, &with_op(&base, Opcode::Lui)),
            0xff00
        );
    }
}
