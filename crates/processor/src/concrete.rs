//! Concrete (executable) twin of the symbolic processor model.
//!
//! [`MutantCore`] interprets the same architectural semantics and the same
//! [`Mutation`] descriptions as [`SymbolicProcessor`](crate::symbolic::SymbolicProcessor),
//! so that counterexamples found by BMC can be replayed step by step, and so
//! that the symbolic model can be differentially tested against an
//! independent implementation.

use sepe_isa::{Instr, Opcode, OperandKind, Reg};
use sepe_smt::sort::{mask, sign_extend};

use crate::config::ProcessorConfig;
use crate::mutation::{Effect, Mutation};
use crate::symbolic::materialise_imm;

/// Computes the ALU result of an opcode at a reduced data-path width.
///
/// This mirrors [`sepe_isa::exec::alu_value`] but is parametric in XLEN; at
/// `xlen == 32` the two agree bit for bit.
pub fn alu_value_width(opcode: Opcode, a: u64, b: u64, xlen: u32) -> u64 {
    use Opcode::*;
    let a = mask(a, xlen);
    let b = mask(b, xlen);
    let sa = sign_extend(a, xlen) as i64;
    let sb = sign_extend(b, xlen) as i64;
    let shamt = (b & u64::from(xlen - 1)) as u32;
    let value = match opcode {
        Add | Addi => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Sll | Slli => a << shamt,
        Slt | Slti => u64::from(sa < sb),
        Sltu | Sltiu => u64::from(a < b),
        Xor | Xori => a ^ b,
        Srl | Srli => a >> shamt,
        Sra | Srai => (sa >> shamt) as u64,
        Or | Ori => a | b,
        And | Andi => a & b,
        Mul => a.wrapping_mul(b),
        Mulh => ((sa.wrapping_mul(sb)) as u64) >> xlen,
        Mulhsu => ((sa.wrapping_mul(b as i64)) as u64) >> xlen,
        Mulhu => (a.wrapping_mul(b)) >> xlen,
        Lui => b,
        Lw | Sw => unreachable!("memory instructions are not ALU operations"),
    };
    mask(value, xlen)
}

/// The concrete mutant core: register file, small word memory, history
/// window and an optional injected bug.
#[derive(Debug, Clone)]
pub struct MutantCore {
    config: ProcessorConfig,
    mutation: Option<Mutation>,
    regs: Vec<u64>,
    mem: Vec<u64>,
    history: Vec<Instr>,
}

impl MutantCore {
    /// Creates a core with all state zeroed.
    pub fn new(config: ProcessorConfig, mutation: Option<Mutation>) -> Self {
        config.validate();
        MutantCore {
            regs: vec![0; 32],
            mem: vec![0; config.mem_words],
            history: Vec::new(),
            config,
            mutation,
        }
    }

    /// The configuration of this core.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (masked to XLEN; writes to `x0` are dropped).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = mask(value, self.config.xlen);
        }
    }

    /// Reads a data-memory word by index.
    pub fn mem_word(&self, index: usize) -> u64 {
        self.mem[index % self.config.mem_words]
    }

    /// Writes a data-memory word by index.
    pub fn set_mem_word(&mut self, index: usize, value: u64) {
        let idx = index % self.config.mem_words;
        self.mem[idx] = mask(value, self.config.xlen);
    }

    /// The full register file (with `x0` forced to zero).
    pub fn regs(&self) -> Vec<u64> {
        let mut out = self.regs.clone();
        out[0] = 0;
        out
    }

    /// The full data memory.
    pub fn mem(&self) -> &[u64] {
        &self.mem
    }

    /// The most recently committed instructions, newest first.
    pub fn history(&self) -> &[Instr] {
        &self.history
    }

    fn memory_index(&self, address: u64, bank: bool) -> usize {
        let half = self.config.mem_words / 2;
        let low = ((address >> 2) as usize) & (half - 1);
        usize::from(bank) * half + low
    }

    /// Commits one instruction with memory accesses routed to the lower
    /// bank, applying the injected bug if its trigger fires.
    pub fn commit(&mut self, instr: &Instr) {
        self.commit_banked(instr, false);
    }

    /// Commits one instruction with memory accesses routed to the given
    /// bank (the QED transformations use the upper bank for
    /// duplicate/equivalent instructions).
    pub fn commit_banked(&mut self, instr: &Instr, bank: bool) {
        let xlen = self.config.xlen;
        let prev = self.history.first().cloned();
        let prev2 = self.history.get(1).cloned();
        let triggered = self
            .mutation
            .as_ref()
            .map(|m| m.trigger.fires(instr, prev.as_ref(), prev2.as_ref()))
            .unwrap_or(false);
        let effect = self.mutation.as_ref().map(|m| m.effect);

        let rs1_raw = self.reg(instr.rs1);
        let rs2_val = self.reg(instr.rs2);
        let rs1_val = match effect {
            Some(Effect::ZeroFirstOperand) if triggered => 0,
            Some(Effect::SwapOperands) if triggered => rs2_val,
            _ => rs1_raw,
        };
        let imm = materialise_imm(instr, xlen);

        let mut address = mask(rs1_val.wrapping_add(imm), xlen);
        match effect {
            Some(Effect::AddressOffset(off)) if triggered => {
                address = mask(address.wrapping_add(off), xlen);
            }
            Some(Effect::IgnoreMemOffset) if triggered => {
                address = rs1_val;
            }
            _ => {}
        }
        let mem_read = self.mem[self.memory_index(address, bank)];

        let nominal = match instr.opcode {
            Opcode::Lw => mem_read,
            Opcode::Sw => rs2_val,
            Opcode::Lui => imm,
            op => match op.operand_kind() {
                OperandKind::RegReg => alu_value_width(op, rs1_val, rs2_val, xlen),
                OperandKind::RegImm | OperandKind::RegShamt => {
                    alu_value_width(op, rs1_val, imm, xlen)
                }
                _ => unreachable!("handled above"),
            },
        };
        let result = match effect {
            Some(Effect::XorResult(c)) if triggered => mask(nominal ^ c, xlen),
            Some(Effect::AddToResult(c)) if triggered => mask(nominal.wrapping_add(c), xlen),
            Some(Effect::WrongOperation(op2)) if triggered => match instr.opcode {
                Opcode::Lw => mem_read,
                Opcode::Sw => rs2_val,
                Opcode::Lui => imm,
                op => {
                    let b = if op.operand_kind() == OperandKind::RegReg {
                        rs2_val
                    } else {
                        imm
                    };
                    alu_value_width(op2, rs1_val, b, xlen)
                }
            },
            _ => nominal,
        };

        let drops_writeback = matches!(effect, Some(Effect::DropWriteback)) && triggered;
        if instr.opcode == Opcode::Sw {
            let idx = self.memory_index(address, bank);
            self.mem[idx] = result;
        } else if instr.opcode.writes_rd() && !drops_writeback {
            self.set_reg(instr.rd, result);
        }

        self.history.insert(0, *instr);
        self.history.truncate(self.config.history_depth);
    }

    /// Commits a sequence of instructions.
    pub fn run<'a, I: IntoIterator<Item = &'a Instr>>(&mut self, program: I) {
        for instr in program {
            self.commit(instr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicProcessor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sepe_smt::TermManager;
    use std::collections::HashMap;

    #[test]
    fn reduced_width_alu_matches_full_width_at_32_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let opcodes = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Sll,
            Opcode::Slt,
            Opcode::Sltu,
            Opcode::Xor,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Or,
            Opcode::And,
            Opcode::Mul,
            Opcode::Mulh,
            Opcode::Mulhsu,
            Opcode::Mulhu,
        ];
        for &op in &opcodes {
            for _ in 0..30 {
                let a: u32 = rng.gen();
                let b: u32 = rng.gen();
                assert_eq!(
                    alu_value_width(op, u64::from(a), u64::from(b), 32) as u32,
                    sepe_isa::exec::alu_value(op, a, b),
                    "mismatch for {op} on {a:#x},{b:#x}"
                );
            }
        }
    }

    fn random_program(rng: &mut StdRng, len: usize) -> Vec<Instr> {
        (0..len)
            .map(|_| {
                let op = Opcode::ALL[rng.gen_range(0..Opcode::ALL.len())];
                let rd = Reg(rng.gen_range(0..32));
                let rs1 = Reg(rng.gen_range(0..32));
                let rs2 = Reg(rng.gen_range(0..32));
                match op.operand_kind() {
                    OperandKind::RegReg => Instr::reg_reg(op, rd, rs1, rs2),
                    OperandKind::RegImm => {
                        Instr::new(op, rd, rs1, Reg::ZERO, rng.gen_range(-2048..2048))
                    }
                    OperandKind::RegShamt => {
                        Instr::new(op, rd, rs1, Reg::ZERO, rng.gen_range(0..32))
                    }
                    OperandKind::Upper => Instr::lui(rd, rng.gen_range(0..(1 << 20))),
                    OperandKind::Load => Instr::lw(rd, rs1, rng.gen_range(-2048..2048)),
                    OperandKind::Store => Instr::sw(rs1, rs2, rng.gen_range(-2048..2048)),
                }
            })
            .collect()
    }

    /// The symbolic model (evaluated concretely) and the mutant core must
    /// agree on every register and memory word, for random programs, with and
    /// without injected bugs, at multiple widths.
    #[test]
    fn differential_symbolic_vs_concrete() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut mutations: Vec<Option<Mutation>> = vec![None];
        mutations.extend(Mutation::table1().into_iter().map(Some).take(4));
        mutations.extend(Mutation::figure4().into_iter().map(Some).take(4));
        for xlen in [8u32, 32] {
            for mutation in &mutations {
                let config = ProcessorConfig {
                    xlen,
                    mem_words: 4,
                    ..ProcessorConfig::default()
                };
                let program = random_program(&mut rng, 12);

                let mut core = MutantCore::new(config.clone(), mutation.clone());
                core.run(&program);

                let mut tm = TermManager::new();
                let proc = SymbolicProcessor::build(&mut tm, &config, mutation.as_ref());
                let inputs: Vec<HashMap<_, _>> =
                    program.iter().map(|i| proc.port_inputs(i)).collect();
                let trace = proc.ts.simulate(&tm, &inputs);
                let last = trace.last().expect("trace");

                for r in 0..32 {
                    assert_eq!(
                        last[&proc.regs[r]],
                        core.regs()[r],
                        "register x{r} mismatch (xlen={xlen}, mutation={:?})",
                        mutation.as_ref().map(|m| m.name.clone())
                    );
                }
                for w in 0..config.mem_words {
                    assert_eq!(
                        last[&proc.mem[w]],
                        core.mem()[w],
                        "memory word {w} mismatch (xlen={xlen}, mutation={:?})",
                        mutation.as_ref().map(|m| m.name.clone())
                    );
                }
            }
        }
    }

    #[test]
    fn buggy_core_differs_from_clean_core_only_when_triggered() {
        let config = ProcessorConfig::default();
        let bug = Mutation::table1()[1].clone(); // SUB computes ADD
        let mut clean = MutantCore::new(config.clone(), None);
        let mut buggy = MutantCore::new(config, Some(bug));
        let setup = [
            Instr::addi(Reg(1), Reg(0), 30),
            Instr::addi(Reg(2), Reg(0), 12),
        ];
        clean.run(&setup);
        buggy.run(&setup);
        assert_eq!(clean.regs(), buggy.regs());
        let sub = Instr::sub(Reg(3), Reg(1), Reg(2));
        clean.commit(&sub);
        buggy.commit(&sub);
        assert_eq!(clean.reg(Reg(3)), 18);
        assert_eq!(buggy.reg(Reg(3)), 42, "buggy SUB adds instead");
    }

    #[test]
    fn history_window_is_bounded() {
        let config = ProcessorConfig::default();
        let mut core = MutantCore::new(config.clone(), None);
        for i in 0..10 {
            core.commit(&Instr::addi(Reg(1), Reg(0), i));
        }
        assert_eq!(core.history().len(), config.history_depth);
        assert_eq!(core.history()[0].imm, 9, "newest first");
    }

    #[test]
    fn store_address_wraps_into_the_small_memory() {
        let config = ProcessorConfig {
            mem_words: 4,
            ..ProcessorConfig::default()
        };
        let mut core = MutantCore::new(config, None);
        core.set_reg(Reg(1), 100); // word index (100/4) % 4 == 1
        core.set_reg(Reg(2), 77);
        core.commit(&Instr::sw(Reg(1), Reg(2), 0));
        assert_eq!(core.mem_word(1), 77);
    }
}
