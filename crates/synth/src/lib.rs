//! Component-based program synthesis for SEPE-SQED.
//!
//! This crate implements the synthesis half of the paper (Section 4): given
//! the formal semantic model of an *original instruction* (the specification)
//! and a library of *components* (NIC / DIC / CIC classes over RV32IM
//! semantics), find straight-line programs that are semantically equivalent
//! to the original instruction.  Three CEGIS drivers are provided:
//!
//! * [`classical`] — the Gulwani et al. component-based CEGIS over the whole
//!   library at once (kept as the baseline the paper reports as infeasible),
//! * [`iterative`] — the Buchwald et al. iterative CEGIS that enumerates
//!   multisets by combinations-with-replacement,
//! * [`hpf`] — the paper's contribution, CEGIS based on the
//!   highest-priority-first multiset selection (Algorithm 1).
//!
//! The synthesized [`EquivTemplate`]s feed the EDSEP-V transformation in the
//! `sepe-sqed` crate.
//!
//! # Example
//!
//! ```
//! use sepe_isa::Opcode;
//! use sepe_synth::{library::Library, spec::Spec, SynthesisConfig, hpf::HpfCegis};
//!
//! // A deliberately tiny configuration so the example runs in seconds even
//! // unoptimized (the fig3 bench profiles exercise the paper-scale ones).
//! let config = SynthesisConfig {
//!     width: 4,
//!     programs_wanted: 1,
//!     max_cegis_iterations: 6,
//!     ..SynthesisConfig::default()
//! };
//! let library = Library::standard();
//! let spec = Spec::for_opcode(Opcode::Sub, config.width);
//! let mut synth = HpfCegis::new(config, library);
//! let result = synth.synthesize(&spec);
//! assert!(!result.programs.is_empty(), "SUB has equivalent programs");
//! ```

pub mod cegis;
pub mod classical;
pub mod component;
pub mod hpf;
pub mod iterative;
pub mod library;
pub mod program;
pub mod spec;

pub use cegis::{CegisEngine, CegisOutcome, SynthesisConfig};
pub use component::{Component, ComponentClass};
pub use library::Library;
pub use program::{EquivTemplate, ImmSlot, Slot, TemplateInstr};
pub use spec::{Spec, SynthesisCase};

/// The result of running one of the synthesis drivers on a specification.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The specification that was synthesized.
    pub spec_name: String,
    /// Every distinct equivalent program found, in discovery order.
    pub programs: Vec<EquivTemplate>,
    /// Number of CEGIS invocations (multisets tried).
    pub multisets_tried: usize,
    /// Number of CEGIS invocations that produced a program.
    pub multisets_successful: usize,
    /// Total wall-clock time spent.
    pub duration: std::time::Duration,
    /// Solver-reuse counters accumulated over every CEGIS invocation of the
    /// run (terms cached/reused by the persistent bit-blaster, learnt
    /// clauses retained across refinement rounds).
    pub solver: sepe_smt::SolverReuseStats,
}

impl SynthesisResult {
    /// Whether at least one equivalent program was found.
    pub fn succeeded(&self) -> bool {
        !self.programs.is_empty()
    }

    /// The first (typically shortest) synthesized program.
    pub fn best(&self) -> Option<&EquivTemplate> {
        self.programs.first()
    }
}
