//! Library components (Section 4.1 of the paper).
//!
//! A component is a reusable building block of synthesized programs.  The
//! paper defines three classes:
//!
//! * **NIC** (native instruction class) — semantics identical to an R-type
//!   instruction over register inputs,
//! * **DIC** (derived instruction class) — an immediate-form instruction
//!   whose immediate operand is an *internal attribute* fixed by the
//!   synthesizer rather than an input,
//! * **CIC** (composite instruction class) — a short fixed instruction
//!   sequence whose overall semantics are treated as one component (used to
//!   cover behaviours that are hard to reach otherwise, such as
//!   multiplication by a constant).

use sepe_isa::{semantics, Opcode};
use sepe_smt::{TermId, TermManager};

use crate::program::{ImmSlot, Slot, TemplateInstr};

/// The component class (NIC / DIC / CIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentClass {
    /// Native instruction class.
    Nic,
    /// Derived instruction class.
    Dic,
    /// Composite instruction class.
    Cic,
}

/// How a component's internal attribute is constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// No internal attribute.
    None,
    /// A sign-extended 12-bit immediate.
    Imm12,
    /// A shift amount in `0..width`.
    Shamt,
    /// An upper-immediate value (low 12 bits zero), as produced by `LUI`.
    Upper20,
}

/// The concrete behaviour of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// NIC: one R-type instruction.
    Native(Opcode),
    /// DIC: one immediate-form instruction, immediate as attribute.
    Derived(Opcode),
    /// CIC: multiply (of the given flavour) by a constant.
    MulByConst(Opcode),
    /// CIC: `(I1 << A) + I2`.
    ShiftLeftAdd,
    /// CIC: `0 - I1`.
    Negate,
    /// CIC: materialise a constant (`sext(A)`).
    LoadImmediate,
    /// CIC: `I1 & !I2`.
    AndNot,
    /// CIC: `(I1 <s 0) ? 1 : 0`.
    SignBit,
}

/// How a decoded attribute is carried into the instruction template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrResolution {
    /// A constant chosen by the synthesizer.
    Const(i64),
    /// The original instruction's immediate, passed through.
    FromOriginal,
}

/// A synthesis component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Unique component name (e.g. `"ADD"`, `"XORI"`, `"MUL_CONST"`).
    pub name: String,
    /// The class (NIC / DIC / CIC).
    pub class: ComponentClass,
    /// The behaviour.
    pub kind: ComponentKind,
}

impl Component {
    /// Creates a component; the name is derived from the kind.
    pub fn new(class: ComponentClass, kind: ComponentKind) -> Self {
        let name = match kind {
            ComponentKind::Native(op) | ComponentKind::Derived(op) => op.mnemonic().to_uppercase(),
            ComponentKind::MulByConst(op) => format!("{}_CONST", op.mnemonic().to_uppercase()),
            ComponentKind::ShiftLeftAdd => "SHL_ADD".to_string(),
            ComponentKind::Negate => "NEG".to_string(),
            ComponentKind::LoadImmediate => "LOAD_IMM".to_string(),
            ComponentKind::AndNot => "AND_NOT".to_string(),
            ComponentKind::SignBit => "SIGN_BIT".to_string(),
        };
        Component { name, class, kind }
    }

    /// Number of register-value inputs.
    pub fn num_inputs(&self) -> usize {
        match self.kind {
            ComponentKind::Native(_) => 2,
            ComponentKind::Derived(Opcode::Lui) => 0,
            ComponentKind::Derived(_) => 1,
            ComponentKind::MulByConst(_) => 1,
            ComponentKind::ShiftLeftAdd => 2,
            ComponentKind::Negate => 1,
            ComponentKind::LoadImmediate => 0,
            ComponentKind::AndNot => 2,
            ComponentKind::SignBit => 1,
        }
    }

    /// The attribute kind (how the internal immediate is constrained).
    pub fn attr_kind(&self) -> AttrKind {
        match self.kind {
            ComponentKind::Native(_)
            | ComponentKind::Negate
            | ComponentKind::AndNot
            | ComponentKind::SignBit => AttrKind::None,
            ComponentKind::Derived(Opcode::Lui) => AttrKind::Upper20,
            ComponentKind::Derived(Opcode::Slli | Opcode::Srli | Opcode::Srai)
            | ComponentKind::ShiftLeftAdd => AttrKind::Shamt,
            ComponentKind::Derived(_)
            | ComponentKind::MulByConst(_)
            | ComponentKind::LoadImmediate => AttrKind::Imm12,
        }
    }

    /// Whether the component has an internal attribute.
    pub fn has_attr(&self) -> bool {
        self.attr_kind() != AttrKind::None
    }

    /// The base opcode this component is built around (used for the χ
    /// "same name as the original instruction" check of the HPF priority and
    /// for reporting).
    pub fn base_opcode(&self) -> Option<Opcode> {
        match self.kind {
            ComponentKind::Native(op)
            | ComponentKind::Derived(op)
            | ComponentKind::MulByConst(op) => Some(op),
            ComponentKind::ShiftLeftAdd => Some(Opcode::Sll),
            ComponentKind::Negate => Some(Opcode::Sub),
            ComponentKind::LoadImmediate => Some(Opcode::Addi),
            ComponentKind::AndNot => Some(Opcode::And),
            ComponentKind::SignBit => Some(Opcode::Slt),
        }
    }

    /// Number of instructions the component expands to in a deployed
    /// equivalent program.
    pub fn expansion_len(&self) -> usize {
        match self.kind {
            ComponentKind::Native(_)
            | ComponentKind::Derived(_)
            | ComponentKind::Negate
            | ComponentKind::LoadImmediate
            | ComponentKind::SignBit => 1,
            ComponentKind::MulByConst(_) | ComponentKind::ShiftLeftAdd | ComponentKind::AndNot => 2,
        }
    }

    /// The symbolic semantics `Φ_j(I, A, O)`: builds the output term from the
    /// input terms (all of the given width) and the attribute term.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match, or an attribute is
    /// required but missing.
    pub fn semantics(
        &self,
        tm: &mut TermManager,
        inputs: &[TermId],
        attr: Option<TermId>,
    ) -> TermId {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "wrong input count for {}",
            self.name
        );
        let attr = || attr.expect("component requires an attribute");
        match self.kind {
            ComponentKind::Native(op) => semantics::alu_result(tm, op, inputs[0], inputs[1]),
            ComponentKind::Derived(Opcode::Lui) => attr(),
            ComponentKind::Derived(op) => semantics::alu_result(tm, op, inputs[0], attr()),
            ComponentKind::MulByConst(op) => semantics::alu_result(tm, op, inputs[0], attr()),
            ComponentKind::ShiftLeftAdd => {
                let shifted = semantics::alu_result(tm, Opcode::Sll, inputs[0], attr());
                tm.bv_add(shifted, inputs[1])
            }
            ComponentKind::Negate => {
                let width = tm.width(inputs[0]);
                let zero = tm.zero(width);
                tm.bv_sub(zero, inputs[0])
            }
            ComponentKind::LoadImmediate => attr(),
            ComponentKind::AndNot => {
                let n = tm.bv_not(inputs[1]);
                tm.bv_and(inputs[0], n)
            }
            ComponentKind::SignBit => {
                let width = tm.width(inputs[0]);
                let zero = tm.zero(width);
                let lt = tm.bv_slt(inputs[0], zero);
                tm.bool_to_bv(lt, width)
            }
        }
    }

    /// The constraint the attribute value must satisfy so that the deployed
    /// template's immediates stay encodable.
    pub fn attr_constraint(&self, tm: &mut TermManager, attr: TermId) -> TermId {
        let width = tm.width(attr);
        match self.attr_kind() {
            AttrKind::None => tm.tru(),
            AttrKind::Imm12 => {
                if width <= 12 {
                    tm.tru()
                } else {
                    // attr must equal the sign extension of its low 12 bits
                    let low = tm.bv_extract(attr, 11, 0);
                    let sext = tm.bv_sign_ext(low, width - 12);
                    tm.eq(attr, sext)
                }
            }
            AttrKind::Shamt => {
                let limit = tm.bv_const(u64::from(width), width);
                tm.bv_ult(attr, limit)
            }
            AttrKind::Upper20 => {
                if width <= 12 {
                    tm.tru()
                } else {
                    let low = tm.bv_extract(attr, 11, 0);
                    let zero = tm.zero(12);
                    tm.eq(low, zero)
                }
            }
        }
    }

    /// Converts a decoded attribute bit pattern (width-bit, as chosen by the
    /// synthesizer) into the immediate constant carried by the template.
    pub fn attr_to_imm(&self, raw: u64, width: u32) -> i32 {
        let signed = sepe_smt::sort::sign_extend(raw, width) as i64;
        match self.attr_kind() {
            AttrKind::None => 0,
            AttrKind::Imm12 => signed as i32,
            AttrKind::Shamt => (raw & u64::from(width - 1)) as i32,
            AttrKind::Upper20 => ((raw >> 12) & 0xf_ffff) as i32,
        }
    }

    /// Expands the component into template instructions.
    ///
    /// * `inputs` — the slots feeding the component,
    /// * `attr` — the resolved attribute (constant or pass-through),
    /// * `dest` — where the component's output goes,
    /// * `next_temp` — allocator for intermediate temporaries.
    pub fn expand(
        &self,
        inputs: &[Slot],
        attr: Option<AttrResolution>,
        dest: Slot,
        next_temp: &mut u8,
    ) -> Vec<TemplateInstr> {
        let imm = match attr {
            Some(AttrResolution::Const(c)) => ImmSlot::Const(c as i32),
            Some(AttrResolution::FromOriginal) => ImmSlot::FromOriginal,
            None => ImmSlot::Const(0),
        };
        let mut fresh_temp = || {
            let t = Slot::Temp(*next_temp);
            *next_temp += 1;
            t
        };
        match self.kind {
            ComponentKind::Native(op) => vec![TemplateInstr {
                opcode: op,
                dest,
                src1: inputs[0],
                src2: inputs[1],
                imm: ImmSlot::Const(0),
            }],
            ComponentKind::Derived(Opcode::Lui) => vec![TemplateInstr {
                opcode: Opcode::Lui,
                dest,
                src1: Slot::Zero,
                src2: Slot::Zero,
                imm,
            }],
            ComponentKind::Derived(op) => vec![TemplateInstr {
                opcode: op,
                dest,
                src1: inputs[0],
                src2: Slot::Zero,
                imm,
            }],
            ComponentKind::MulByConst(op) => {
                let t = fresh_temp();
                vec![
                    TemplateInstr {
                        opcode: Opcode::Addi,
                        dest: t,
                        src1: Slot::Zero,
                        src2: Slot::Zero,
                        imm,
                    },
                    TemplateInstr {
                        opcode: op,
                        dest,
                        src1: inputs[0],
                        src2: t,
                        imm: ImmSlot::Const(0),
                    },
                ]
            }
            ComponentKind::ShiftLeftAdd => {
                let t = fresh_temp();
                vec![
                    TemplateInstr {
                        opcode: Opcode::Slli,
                        dest: t,
                        src1: inputs[0],
                        src2: Slot::Zero,
                        imm,
                    },
                    TemplateInstr {
                        opcode: Opcode::Add,
                        dest,
                        src1: t,
                        src2: inputs[1],
                        imm: ImmSlot::Const(0),
                    },
                ]
            }
            ComponentKind::Negate => vec![TemplateInstr {
                opcode: Opcode::Sub,
                dest,
                src1: Slot::Zero,
                src2: inputs[0],
                imm: ImmSlot::Const(0),
            }],
            ComponentKind::LoadImmediate => vec![TemplateInstr {
                opcode: Opcode::Addi,
                dest,
                src1: Slot::Zero,
                src2: Slot::Zero,
                imm,
            }],
            ComponentKind::AndNot => {
                let t = fresh_temp();
                vec![
                    TemplateInstr {
                        opcode: Opcode::Xori,
                        dest: t,
                        src1: inputs[1],
                        src2: Slot::Zero,
                        imm: ImmSlot::Const(-1),
                    },
                    TemplateInstr {
                        opcode: Opcode::And,
                        dest,
                        src1: inputs[0],
                        src2: t,
                        imm: ImmSlot::Const(0),
                    },
                ]
            }
            ComponentKind::SignBit => vec![TemplateInstr {
                opcode: Opcode::Slt,
                dest,
                src1: inputs[0],
                src2: Slot::Zero,
                imm: ImmSlot::Const(0),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::{concrete, Sort};
    use std::collections::HashMap;

    fn eval_component(c: &Component, inputs: &[u64], attr: Option<u64>, width: u32) -> u64 {
        let mut tm = TermManager::new();
        let in_terms: Vec<TermId> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| tm.var(&format!("i{i}"), Sort::BitVec(width)))
            .collect();
        let attr_term = attr.map(|_| tm.var("attr", Sort::BitVec(width)));
        let out = c.semantics(&mut tm, &in_terms, attr_term);
        let mut env: HashMap<TermId, u64> = in_terms
            .iter()
            .copied()
            .zip(inputs.iter().copied())
            .collect();
        if let (Some(t), Some(v)) = (attr_term, attr) {
            env.insert(t, v);
        }
        concrete::eval(&tm, out, &env)
    }

    #[test]
    fn native_component_matches_isa_semantics() {
        let add = Component::new(ComponentClass::Nic, ComponentKind::Native(Opcode::Add));
        assert_eq!(add.num_inputs(), 2);
        assert!(!add.has_attr());
        assert_eq!(eval_component(&add, &[40, 2], None, 32), 42);
        let sra = Component::new(ComponentClass::Nic, ComponentKind::Native(Opcode::Sra));
        assert_eq!(
            eval_component(&sra, &[0x8000_0000, 4], None, 32),
            0xf800_0000
        );
    }

    #[test]
    fn derived_component_uses_its_attribute() {
        let xori = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Xori));
        assert_eq!(xori.num_inputs(), 1);
        assert!(xori.has_attr());
        assert_eq!(
            eval_component(&xori, &[0xff], Some(0xffff_ffff), 32),
            0xffff_ff00
        );
        let lui = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Lui));
        assert_eq!(lui.num_inputs(), 0);
        assert_eq!(
            eval_component(&lui, &[], Some(0x1234_5000), 32),
            0x1234_5000
        );
    }

    #[test]
    fn composite_components_compute_their_identities() {
        let neg = Component::new(ComponentClass::Cic, ComponentKind::Negate);
        assert_eq!(
            eval_component(&neg, &[5], None, 32),
            (5u32).wrapping_neg() as u64
        );
        let andnot = Component::new(ComponentClass::Cic, ComponentKind::AndNot);
        assert_eq!(eval_component(&andnot, &[0xff, 0x0f], None, 32), 0xf0);
        let sign = Component::new(ComponentClass::Cic, ComponentKind::SignBit);
        assert_eq!(eval_component(&sign, &[0x8000_0000], None, 32), 1);
        assert_eq!(eval_component(&sign, &[0x7000_0000], None, 32), 0);
        let shladd = Component::new(ComponentClass::Cic, ComponentKind::ShiftLeftAdd);
        assert_eq!(eval_component(&shladd, &[3, 5], Some(4), 32), 3 * 16 + 5);
        let mulc = Component::new(ComponentClass::Cic, ComponentKind::MulByConst(Opcode::Mul));
        assert_eq!(eval_component(&mulc, &[7], Some(6), 32), 42);
    }

    #[test]
    fn attr_constraints_enforce_encodability() {
        let mut tm = TermManager::new();
        let attr = tm.var("a", Sort::BitVec(32));
        let addi = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Addi));
        let c = addi.attr_constraint(&mut tm, attr);
        let ok: HashMap<_, _> = [(attr, 0xffff_ffffu64)].into_iter().collect(); // -1
        let bad: HashMap<_, _> = [(attr, 0x8000u64)].into_iter().collect(); // 32768 not sext12
        assert_eq!(concrete::eval(&tm, c, &ok), 1);
        assert_eq!(concrete::eval(&tm, c, &bad), 0);

        let slli = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Slli));
        let c = slli.attr_constraint(&mut tm, attr);
        let ok: HashMap<_, _> = [(attr, 31u64)].into_iter().collect();
        let bad: HashMap<_, _> = [(attr, 32u64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, c, &ok), 1);
        assert_eq!(concrete::eval(&tm, c, &bad), 0);

        let lui = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Lui));
        let c = lui.attr_constraint(&mut tm, attr);
        let ok: HashMap<_, _> = [(attr, 0x1234_5000u64)].into_iter().collect();
        let bad: HashMap<_, _> = [(attr, 0x1234_5001u64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, c, &ok), 1);
        assert_eq!(concrete::eval(&tm, c, &bad), 0);
    }

    #[test]
    fn attr_to_imm_interprets_the_bit_pattern() {
        let addi = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Addi));
        assert_eq!(addi.attr_to_imm(0xffff_ffff, 32), -1);
        assert_eq!(addi.attr_to_imm(5, 32), 5);
        let slli = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Slli));
        assert_eq!(slli.attr_to_imm(7, 32), 7);
        let lui = Component::new(ComponentClass::Dic, ComponentKind::Derived(Opcode::Lui));
        assert_eq!(lui.attr_to_imm(0x1234_5000, 32), 0x12345);
    }

    #[test]
    fn expansion_produces_executable_instructions() {
        let mulc = Component::new(ComponentClass::Cic, ComponentKind::MulByConst(Opcode::Mul));
        let mut next_temp = 0;
        let instrs = mulc.expand(
            &[Slot::Rs1],
            Some(AttrResolution::Const(6)),
            Slot::Dest,
            &mut next_temp,
        );
        assert_eq!(instrs.len(), 2);
        assert_eq!(instrs.len(), mulc.expansion_len());
        assert_eq!(next_temp, 1);
        assert_eq!(instrs[0].opcode, Opcode::Addi);
        assert_eq!(instrs[1].opcode, Opcode::Mul);
        assert_eq!(instrs[1].dest, Slot::Dest);
    }

    #[test]
    fn component_names_are_stable() {
        let c = Component::new(ComponentClass::Nic, ComponentKind::Native(Opcode::Add));
        assert_eq!(c.name, "ADD");
        let c = Component::new(ComponentClass::Cic, ComponentKind::MulByConst(Opcode::Mulh));
        assert_eq!(c.name, "MULH_CONST");
        assert_eq!(c.base_opcode(), Some(Opcode::Mulh));
    }
}
