//! HPF-CEGIS: CEGIS based on the highest-priority-first algorithm
//! (Algorithm 1 of the paper).
//!
//! Every component carries a *choice weight* `c_j` and an *exclusion weight*
//! `e_j`.  Multisets are ranked by
//!
//! ```text
//! priority = Σ_j (c_j − α·χ_j) / Σ_j e_j
//! ```
//!
//! where `χ_j` is 1 when component `j` has the same name as the original
//! instruction (to minimise data-path overlap between the original
//! instruction and its equivalent program).  After each CEGIS call the
//! weights of the attempted multiset's components are updated: choice weights
//! grow on success, exclusion weights grow on failure, steering the search
//! towards components that synthesize well for the current specification.

use std::collections::HashMap;
use std::time::Instant;

use crate::cegis::{CegisEngine, CegisOutcome, SynthesisConfig};
use crate::component::Component;
use crate::library::Library;
use crate::spec::Spec;
use crate::SynthesisResult;

/// Per-component priority weights `[c_j, e_j]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weights {
    /// Choice weight (higher ⇒ higher priority).
    pub choice: u64,
    /// Exclusion weight (higher ⇒ lower priority).
    pub exclusion: u64,
}

/// The HPF-CEGIS driver.
#[derive(Debug, Clone)]
pub struct HpfCegis {
    config: SynthesisConfig,
    library: Library,
    weights: HashMap<String, Weights>,
}

impl HpfCegis {
    /// Creates a driver with all weights initialised to the configured value.
    pub fn new(config: SynthesisConfig, library: Library) -> Self {
        let weights = library
            .components()
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    Weights {
                        choice: config.initial_weight,
                        exclusion: config.initial_weight,
                    },
                )
            })
            .collect();
        HpfCegis {
            config,
            library,
            weights,
        }
    }

    /// The current weight of a component (for reports and tests).
    pub fn weight(&self, name: &str) -> Option<Weights> {
        self.weights.get(name).copied()
    }

    /// The priority of a multiset of component indices for a given spec.
    pub fn priority(&self, multiset: &[usize], spec: &Spec) -> f64 {
        let mut numerator: f64 = 0.0;
        let mut denominator: f64 = 0.0;
        for &idx in multiset {
            let component = &self.library.components()[idx];
            let w = self.weights[&component.name];
            let chi = if component_matches_spec(component, spec) {
                1.0
            } else {
                0.0
            };
            numerator += w.choice as f64 - self.config.alpha as f64 * chi;
            denominator += w.exclusion as f64;
        }
        numerator / denominator.max(1.0)
    }

    fn bump_choice(&mut self, multiset: &[usize]) {
        for &idx in multiset {
            let name = self.library.components()[idx].name.clone();
            if let Some(w) = self.weights.get_mut(&name) {
                w.choice += self.config.weight_increment;
            }
        }
    }

    fn bump_exclusion(&mut self, multiset: &[usize]) {
        for &idx in multiset {
            let name = self.library.components()[idx].name.clone();
            if let Some(w) = self.weights.get_mut(&name) {
                w.exclusion += self.config.weight_increment;
            }
        }
    }

    /// Runs Algorithm 1 for one original instruction.
    pub fn synthesize(&mut self, spec: &Spec) -> SynthesisResult {
        let start = Instant::now();
        let engine = CegisEngine::new(self.config.clone());
        let mut multisets = self.library.multisets(self.config.multiset_size);
        let mut programs = Vec::new();
        let mut tried = 0;
        let mut successful = 0;

        while !multisets.is_empty() && programs.len() < self.config.programs_wanted {
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() > limit {
                    break;
                }
            }
            // Sort in descending order of priority, then take the best.
            multisets.sort_by(|a, b| {
                self.priority(b, spec)
                    .partial_cmp(&self.priority(a, spec))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let multiset = multisets.remove(0);
            let components: Vec<&Component> = multiset
                .iter()
                .map(|&i| &self.library.components()[i])
                .collect();
            tried += 1;
            match engine.synthesize_with_multiset(spec, &components) {
                CegisOutcome::Program(program) => {
                    successful += 1;
                    self.bump_choice(&multiset);
                    if program.component_names.len() >= self.config.min_components
                        || self.config.multiset_size < self.config.min_components
                    {
                        programs.push(program);
                    }
                }
                CegisOutcome::NoProgram | CegisOutcome::ResourceOut => {
                    self.bump_exclusion(&multiset);
                }
            }
        }

        SynthesisResult {
            spec_name: spec.name.clone(),
            programs,
            multisets_tried: tried,
            multisets_successful: successful,
            duration: start.elapsed(),
            solver: engine.solver_stats(),
        }
    }
}

/// χ_j: does the component share its base operation with the original
/// instruction?
pub fn component_matches_spec(component: &Component, spec: &Spec) -> bool {
    component.base_opcode() == Some(spec.opcode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Opcode;
    use std::time::Duration;

    fn fast_config() -> SynthesisConfig {
        SynthesisConfig {
            width: 8,
            multiset_size: 3,
            programs_wanted: 2,
            min_components: 3,
            max_cegis_iterations: 8,
            synth_conflict_limit: Some(20_000),
            verify_conflict_limit: Some(20_000),
            time_limit: Some(Duration::from_secs(60)),
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn priority_penalises_same_name_components() {
        let config = fast_config();
        let lib = Library::standard();
        let hpf = HpfCegis::new(config, lib.clone());
        let spec = Spec::for_opcode(Opcode::Add, 8);
        let add_idx = lib
            .components()
            .iter()
            .position(|c| c.name == "ADD")
            .unwrap();
        let sub_idx = lib
            .components()
            .iter()
            .position(|c| c.name == "SUB")
            .unwrap();
        let with_add = vec![add_idx, sub_idx, sub_idx];
        let without_add = vec![sub_idx, sub_idx, sub_idx];
        assert!(
            hpf.priority(&without_add, &spec) > hpf.priority(&with_add, &spec),
            "the paper prefers SUB-only multisets for the ADD specification"
        );
    }

    #[test]
    fn weights_update_after_synthesis() {
        let config = fast_config();
        let lib = Library::minimal();
        let mut hpf = HpfCegis::new(config.clone(), lib);
        let spec = Spec::for_opcode(Opcode::Sub, 8);
        let before = hpf.weight("XORI").unwrap();
        let result = hpf.synthesize(&spec);
        assert!(result.multisets_tried > 0);
        let after = hpf.weight("XORI").unwrap();
        assert!(
            after.choice > before.choice || after.exclusion > before.exclusion,
            "weights must move after trying multisets containing XORI"
        );
    }

    #[test]
    fn finds_equivalent_programs_for_sub() {
        let mut config = fast_config();
        config.programs_wanted = 1;
        let mut hpf = HpfCegis::new(config, Library::minimal());
        let spec = Spec::for_opcode(Opcode::Sub, 8);
        let result = hpf.synthesize(&spec);
        assert!(
            result.succeeded(),
            "SUB has equivalent programs in the minimal library"
        );
        let program = result.best().unwrap();
        assert_eq!(program.for_opcode, Opcode::Sub);
        assert!(program.len() >= 3);
        // The program is verified at the synthesis width (8 bits here);
        // prove the equivalence once more through an independent query.
        let mut tm = sepe_smt::TermManager::new();
        let inputs = spec.fresh_inputs(&mut tm, "chk");
        let prog_out = crate::cegis::template_result_term(&mut tm, program, &spec, &inputs);
        let spec_out = spec.result(&mut tm, &inputs);
        let eq = tm.eq(prog_out, spec_out);
        assert_eq!(
            sepe_smt::solver::is_valid(&mut tm, eq, None),
            sepe_smt::SatResult::Sat
        );
    }
}
