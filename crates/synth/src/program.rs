//! Synthesized-program templates.
//!
//! A synthesized program is stored as a *template*: a straight-line sequence
//! of instruction patterns whose register operands are symbolic slots
//! (original `rs1`/`rs2`, temporaries, destination) and whose immediates are
//! either constants fixed by synthesis or references to the original
//! instruction's immediate.  The EDSEP-V transformation in `sepe-sqed`
//! instantiates the slots with concrete registers from the E/T register sets
//! (Listing 2 of the paper).

use std::fmt;

use sepe_isa::{exec::ArchState, Instr, Opcode, OperandKind, Reg};

/// A register-operand slot of a template instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The original instruction's first source operand.
    Rs1,
    /// The original instruction's second source operand.
    Rs2,
    /// The hard-wired zero register.
    Zero,
    /// A temporary produced inside the equivalent program.
    Temp(u8),
    /// The destination of the whole equivalent program.
    Dest,
}

/// An immediate-operand slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmSlot {
    /// A constant fixed at synthesis time.
    Const(i32),
    /// The original instruction's immediate operand, passed through.
    FromOriginal,
}

/// One instruction of an equivalent-program template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateInstr {
    /// The opcode.
    pub opcode: Opcode,
    /// Where the result goes.
    pub dest: Slot,
    /// First source operand.
    pub src1: Slot,
    /// Second source operand (R-type only).
    pub src2: Slot,
    /// Immediate operand (I-type / shifts / LUI only).
    pub imm: ImmSlot,
}

/// A program semantically equivalent to one original instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivTemplate {
    /// The opcode of the original instruction this template replaces.
    pub for_opcode: Opcode,
    /// The instruction sequence; the last instruction writes [`Slot::Dest`].
    pub instrs: Vec<TemplateInstr>,
    /// Names of the library components the program was assembled from
    /// (useful for reports and the HPF priority bookkeeping).
    pub component_names: Vec<String>,
}

impl EquivTemplate {
    /// Number of instructions in the template.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the template is empty (never true for valid templates).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The number of distinct temporaries used.
    pub fn temps_used(&self) -> usize {
        let mut temps: Vec<u8> = self
            .instrs
            .iter()
            .flat_map(|i| [i.dest, i.src1, i.src2])
            .filter_map(|s| match s {
                Slot::Temp(t) => Some(t),
                _ => None,
            })
            .collect();
        temps.sort_unstable();
        temps.dedup();
        temps.len()
    }

    /// Whether the template ever uses the original instruction's immediate.
    pub fn uses_original_imm(&self) -> bool {
        self.instrs.iter().any(|i| {
            i.imm == ImmSlot::FromOriginal
                && !matches!(i.opcode.operand_kind(), OperandKind::RegReg)
        })
    }

    /// Instantiates the template with concrete registers and the original
    /// instruction's immediate, producing executable instructions.
    ///
    /// `temp_regs` must provide at least [`temps_used`](Self::temps_used)
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics if too few temporary registers are supplied, or if a constant
    /// immediate is out of range for its instruction format.
    pub fn instantiate(
        &self,
        rs1: Reg,
        rs2: Reg,
        dest: Reg,
        temp_regs: &[Reg],
        original_imm: i32,
    ) -> Vec<Instr> {
        let resolve = |slot: Slot| -> Reg {
            match slot {
                Slot::Rs1 => rs1,
                Slot::Rs2 => rs2,
                Slot::Zero => Reg::ZERO,
                Slot::Dest => dest,
                Slot::Temp(t) => *temp_regs
                    .get(t as usize)
                    .expect("not enough temporary registers"),
            }
        };
        self.instrs
            .iter()
            .map(|ti| {
                let imm = match ti.imm {
                    ImmSlot::Const(c) => c,
                    ImmSlot::FromOriginal => original_imm,
                };
                match ti.opcode.operand_kind() {
                    OperandKind::RegReg => Instr::reg_reg(
                        ti.opcode,
                        resolve(ti.dest),
                        resolve(ti.src1),
                        resolve(ti.src2),
                    ),
                    OperandKind::RegImm | OperandKind::RegShamt => Instr::new(
                        ti.opcode,
                        resolve(ti.dest),
                        resolve(ti.src1),
                        Reg::ZERO,
                        imm,
                    ),
                    OperandKind::Upper => Instr::lui(resolve(ti.dest), imm),
                    OperandKind::Load | OperandKind::Store => {
                        unreachable!("memory instructions never appear in equivalence templates")
                    }
                }
            })
            .collect()
    }

    /// Executes the template concretely on the architectural golden model and
    /// returns the destination value, for differential validation against the
    /// original instruction.
    pub fn evaluate(&self, rs1_value: u32, rs2_value: u32, original_imm: i32) -> u32 {
        // Fixed register convention for evaluation only.
        let rs1 = Reg(1);
        let rs2 = Reg(2);
        let dest = Reg(3);
        let temps: Vec<Reg> = (4..12).map(Reg).collect();
        let instrs = self.instantiate(rs1, rs2, dest, &temps, original_imm);
        let mut state = ArchState::new();
        state.set_reg(rs1, rs1_value);
        state.set_reg(rs2, rs2_value);
        state.run(&instrs);
        state.reg(dest)
    }

    /// Checks on random operand values that the template agrees with the
    /// original instruction's RV32 semantics.  Returns the number of failing
    /// samples (0 means the differential check passed).
    ///
    /// Note: this check runs at 32 bits.  Templates synthesized at a reduced
    /// width are only verified at that width and may legitimately fail here
    /// (shift-based identities do not always generalise across widths); the
    /// curated equivalence database and the default synthesis configuration
    /// work at 32 bits, where this check is authoritative.
    pub fn differential_check(&self, original_imm: i32, samples: u32, seed: u64) -> u32 {
        use sepe_isa::exec::alu_value;
        let mut failures = 0;
        let mut x = seed | 1;
        let mut next = || {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
        };
        for _ in 0..samples {
            let a = next();
            let b = next();
            let expected = match self.for_opcode.operand_kind() {
                OperandKind::RegReg => alu_value(self.for_opcode, a, b),
                OperandKind::RegImm | OperandKind::RegShamt => {
                    alu_value(self.for_opcode, a, original_imm as u32)
                }
                OperandKind::Upper => (original_imm as u32) << 12,
                _ => continue,
            };
            if self.evaluate(a, b, original_imm) != expected {
                failures += 1;
            }
        }
        failures
    }
}

impl fmt::Display for EquivTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; equivalent program for {}", self.for_opcode)?;
        for i in &self.instrs {
            let slot = |s: Slot| match s {
                Slot::Rs1 => "rs1".to_string(),
                Slot::Rs2 => "rs2".to_string(),
                Slot::Zero => "x0".to_string(),
                Slot::Dest => "rd".to_string(),
                Slot::Temp(t) => format!("t{t}"),
            };
            match i.opcode.operand_kind() {
                OperandKind::RegReg => writeln!(
                    f,
                    "{} {}, {}, {}",
                    i.opcode,
                    slot(i.dest),
                    slot(i.src1),
                    slot(i.src2)
                )?,
                _ => {
                    let imm = match i.imm {
                        ImmSlot::Const(c) => format!("{c}"),
                        ImmSlot::FromOriginal => "<imm>".to_string(),
                    };
                    writeln!(
                        f,
                        "{} {}, {}, {}",
                        i.opcode,
                        slot(i.dest),
                        slot(i.src1),
                        imm
                    )?
                }
            }
        }
        Ok(())
    }
}

/// The paper's Listing-1 template: `SUB rd, rs1, rs2` is equivalent to
/// `XORI t1, rs1, -1 ; ADD t2, t1, rs2 ; XORI rd, t2, -1`.
pub fn listing1_sub_template() -> EquivTemplate {
    EquivTemplate {
        for_opcode: Opcode::Sub,
        instrs: vec![
            TemplateInstr {
                opcode: Opcode::Xori,
                dest: Slot::Temp(0),
                src1: Slot::Rs1,
                src2: Slot::Zero,
                imm: ImmSlot::Const(-1),
            },
            TemplateInstr {
                opcode: Opcode::Add,
                dest: Slot::Temp(1),
                src1: Slot::Temp(0),
                src2: Slot::Rs2,
                imm: ImmSlot::Const(0),
            },
            TemplateInstr {
                opcode: Opcode::Xori,
                dest: Slot::Dest,
                src1: Slot::Temp(1),
                src2: Slot::Zero,
                imm: ImmSlot::Const(-1),
            },
        ],
        component_names: vec!["XORI".into(), "ADD".into(), "XORI".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_template_is_equivalent_to_sub() {
        let t = listing1_sub_template();
        assert_eq!(t.len(), 3);
        assert_eq!(t.temps_used(), 2);
        assert!(!t.uses_original_imm());
        assert_eq!(t.differential_check(0, 200, 0xfeed), 0);
        assert_eq!(t.evaluate(10, 3, 0), 7);
        assert_eq!(t.evaluate(3, 10, 0), (3u32).wrapping_sub(10));
    }

    #[test]
    fn instantiate_maps_slots_to_registers_like_listing2() {
        let t = listing1_sub_template();
        // Listing 2: rs1 -> regs[15], rs2 -> regs[16], rd -> regs[14],
        // temps -> regs[26], regs[27]
        let instrs = t.instantiate(Reg(15), Reg(16), Reg(14), &[Reg(26), Reg(27)], 0);
        assert_eq!(instrs[0].to_string(), "xori x26, x15, -1");
        assert_eq!(instrs[1].to_string(), "add x27, x26, x16");
        assert_eq!(instrs[2].to_string(), "xori x14, x27, -1");
    }

    #[test]
    #[should_panic(expected = "not enough temporary registers")]
    fn instantiate_panics_without_enough_temps() {
        listing1_sub_template().instantiate(Reg(1), Reg(2), Reg(3), &[Reg(4)], 0);
    }

    #[test]
    fn from_original_imm_passthrough() {
        // XORI rd rs1 imm == XOR of rs1 with materialised imm via ORI trick is
        // not generally true; use a trivial passthrough template instead:
        // ADDI t0, x0, <imm>; XOR rd, rs1, t0 is equivalent to XORI rd rs1 imm.
        let t = EquivTemplate {
            for_opcode: Opcode::Xori,
            instrs: vec![
                TemplateInstr {
                    opcode: Opcode::Addi,
                    dest: Slot::Temp(0),
                    src1: Slot::Zero,
                    src2: Slot::Zero,
                    imm: ImmSlot::FromOriginal,
                },
                TemplateInstr {
                    opcode: Opcode::Xor,
                    dest: Slot::Dest,
                    src1: Slot::Rs1,
                    src2: Slot::Temp(0),
                    imm: ImmSlot::Const(0),
                },
            ],
            component_names: vec!["ADDI".into(), "XOR".into()],
        };
        assert!(t.uses_original_imm());
        for imm in [-1, 0, 5, -2048, 2047] {
            assert_eq!(t.differential_check(imm, 100, 7), 0, "failed for imm={imm}");
        }
    }

    #[test]
    fn display_renders_the_program() {
        let s = listing1_sub_template().to_string();
        assert!(s.contains("xori t0, rs1, -1"));
        assert!(s.contains("add t1, t0, rs2"));
        assert!(s.contains("xori rd, t1, -1"));
    }
}
