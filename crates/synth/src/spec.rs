//! Synthesis specifications: the formal semantic model of original
//! instructions (Section 4.1).

use sepe_isa::{semantics, Opcode, OperandKind};
use sepe_smt::{Sort, TermId, TermManager};

/// The specification of one original instruction.
///
/// A spec exposes `num_inputs()` bit-vector inputs of the synthesis width:
/// the register operands first, then (for immediate-form originals) the
/// materialised immediate operand.  [`Spec::result`] is the paper's
/// `φ_g(I, O)` and [`Spec::input_constraint`] restricts the immediate input
/// to the values the instruction format can actually encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// Display name (`"SUB"`, `"NOT"`, …).
    pub name: String,
    /// The original instruction's opcode.
    pub opcode: Opcode,
    /// Bit width of all spec inputs and of the output.
    pub width: u32,
    /// Number of register-value inputs (0–2).
    pub num_reg_inputs: usize,
    /// Whether the immediate is a symbolic input of the spec.
    pub has_imm_input: bool,
    /// A fixed immediate value (derived cases such as `NOT` = `XORI -1`).
    pub fixed_imm: Option<i32>,
}

impl Spec {
    /// The specification of an opcode with fully symbolic operands.
    ///
    /// # Panics
    ///
    /// Panics for memory instructions, which are not synthesis targets.
    pub fn for_opcode(opcode: Opcode, width: u32) -> Self {
        let (num_reg_inputs, has_imm_input) = match opcode.operand_kind() {
            OperandKind::RegReg => (2, false),
            OperandKind::RegImm | OperandKind::RegShamt => (1, true),
            OperandKind::Upper => (0, true),
            OperandKind::Load | OperandKind::Store => {
                panic!("memory instructions are not synthesis targets")
            }
        };
        Spec {
            name: opcode.mnemonic().to_uppercase(),
            opcode,
            width,
            num_reg_inputs,
            has_imm_input,
            fixed_imm: None,
        }
    }

    /// A derived case: an immediate-form opcode with a fixed immediate
    /// (e.g. `NOT` is `XORI` with immediate `-1`).
    pub fn with_fixed_imm(name: &str, opcode: Opcode, imm: i32, width: u32) -> Self {
        let mut spec = Spec::for_opcode(opcode, width);
        spec.name = name.to_string();
        spec.has_imm_input = false;
        spec.fixed_imm = Some(imm);
        spec
    }

    /// Total number of spec inputs (register operands plus the immediate
    /// input when present).
    pub fn num_inputs(&self) -> usize {
        self.num_reg_inputs + usize::from(self.has_imm_input)
    }

    /// Index of the immediate input among the spec inputs, if any.
    pub fn imm_input_index(&self) -> Option<usize> {
        self.has_imm_input.then_some(self.num_reg_inputs)
    }

    /// The paper's `φ_g`: the output term over the spec input terms.
    pub fn result(&self, tm: &mut TermManager, inputs: &[TermId]) -> TermId {
        assert_eq!(inputs.len(), self.num_inputs(), "wrong spec input count");
        match self.opcode.operand_kind() {
            OperandKind::RegReg => semantics::alu_result(tm, self.opcode, inputs[0], inputs[1]),
            OperandKind::RegImm | OperandKind::RegShamt => {
                let imm = if self.has_imm_input {
                    inputs[1]
                } else {
                    semantics::imm_term(tm, self.fixed_imm.expect("fixed immediate"), self.width)
                };
                semantics::alu_result(tm, self.opcode, inputs[0], imm)
            }
            OperandKind::Upper => {
                if self.has_imm_input {
                    inputs[0]
                } else {
                    let value = ((self.fixed_imm.expect("fixed immediate") as u32) << 12) as u64;
                    tm.bv_const(value, self.width)
                }
            }
            _ => unreachable!("memory specs are rejected in the constructor"),
        }
    }

    /// Constraint restricting the spec inputs to encodable operand values
    /// (the immediate input must be a sign-extended 12-bit value, a legal
    /// shift amount, or an upper-immediate pattern).
    pub fn input_constraint(&self, tm: &mut TermManager, inputs: &[TermId]) -> TermId {
        let Some(idx) = self.imm_input_index() else {
            return tm.tru();
        };
        let imm = inputs[idx];
        match self.opcode.operand_kind() {
            OperandKind::RegShamt => {
                let limit = tm.bv_const(u64::from(self.width), self.width);
                tm.bv_ult(imm, limit)
            }
            OperandKind::Upper => {
                if self.width <= 12 {
                    tm.tru()
                } else {
                    let low = tm.bv_extract(imm, 11, 0);
                    let zero = tm.zero(12);
                    tm.eq(low, zero)
                }
            }
            _ => {
                if self.width <= 12 {
                    tm.tru()
                } else {
                    let low = tm.bv_extract(imm, 11, 0);
                    let sext = tm.bv_sign_ext(low, self.width - 12);
                    tm.eq(imm, sext)
                }
            }
        }
    }

    /// Creates fresh input variables for this spec.
    pub fn fresh_inputs(&self, tm: &mut TermManager, tag: &str) -> Vec<TermId> {
        (0..self.num_inputs())
            .map(|i| tm.fresh_var(&format!("spec_{tag}_in{i}"), Sort::BitVec(self.width)))
            .collect()
    }
}

/// One of the 26 synthesis cases used for the Figure 3 comparison.
///
/// The paper does not name its 26 cases; this reproduction uses the 20
/// non-memory, non-multiply instructions of the subset with fully symbolic
/// operands, plus six derived fixed-immediate cases (`NOT`, `INC`, `DEC`,
/// `DOUBLE`, `MASK_BYTE`, `SIGN`), for a total of 26.  Multiplication
/// specs are excluded because two-variable multiplication is exactly the
/// case the paper routes through CIC components rather than through
/// synthesis (Section 4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisCase {
    /// Case identifier (`case1` … `case26`).
    pub id: String,
    /// The spec to synthesize.
    pub spec: Spec,
}

impl SynthesisCase {
    /// The full list of 26 cases at the given synthesis width.
    pub fn all(width: u32) -> Vec<SynthesisCase> {
        let mut specs: Vec<Spec> = Vec::new();
        for op in [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Sll,
            Opcode::Slt,
            Opcode::Sltu,
            Opcode::Xor,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Or,
            Opcode::And,
            Opcode::Addi,
            Opcode::Slti,
            Opcode::Sltiu,
            Opcode::Xori,
            Opcode::Ori,
            Opcode::Andi,
            Opcode::Slli,
            Opcode::Srli,
            Opcode::Srai,
            Opcode::Lui,
        ] {
            specs.push(Spec::for_opcode(op, width));
        }
        specs.push(Spec::with_fixed_imm("NOT", Opcode::Xori, -1, width));
        specs.push(Spec::with_fixed_imm("INC", Opcode::Addi, 1, width));
        specs.push(Spec::with_fixed_imm("DEC", Opcode::Addi, -1, width));
        specs.push(Spec::with_fixed_imm("DOUBLE", Opcode::Slli, 1, width));
        specs.push(Spec::with_fixed_imm("MASK_BYTE", Opcode::Andi, 0xff, width));
        specs.push(Spec::with_fixed_imm(
            "SIGN",
            Opcode::Srai,
            width as i32 - 1,
            width,
        ));
        specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| SynthesisCase {
                id: format!("case{}", i + 1),
                spec,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::concrete;
    use std::collections::HashMap;

    #[test]
    fn regreg_spec_semantics() {
        let mut tm = TermManager::new();
        let spec = Spec::for_opcode(Opcode::Sub, 32);
        assert_eq!(spec.num_inputs(), 2);
        assert_eq!(spec.imm_input_index(), None);
        let inputs = spec.fresh_inputs(&mut tm, "t");
        let out = spec.result(&mut tm, &inputs);
        let env: HashMap<_, _> = [(inputs[0], 10u64), (inputs[1], 4u64)]
            .into_iter()
            .collect();
        assert_eq!(concrete::eval(&tm, out, &env), 6);
        let c = spec.input_constraint(&mut tm, &inputs);
        assert_eq!(tm.const_value(c), Some(1), "no immediate, no constraint");
    }

    #[test]
    fn imm_spec_has_an_imm_input_with_constraint() {
        let mut tm = TermManager::new();
        let spec = Spec::for_opcode(Opcode::Xori, 32);
        assert_eq!(spec.num_inputs(), 2);
        assert_eq!(spec.imm_input_index(), Some(1));
        let inputs = spec.fresh_inputs(&mut tm, "x");
        let out = spec.result(&mut tm, &inputs);
        let env: HashMap<_, _> = [(inputs[0], 0xffu64), (inputs[1], 0xffff_ffffu64)]
            .into_iter()
            .collect();
        assert_eq!(concrete::eval(&tm, out, &env), 0xffff_ff00);
        let c = spec.input_constraint(&mut tm, &inputs);
        assert_eq!(
            concrete::eval(&tm, c, &env),
            1,
            "-1 is a legal 12-bit immediate"
        );
        let bad: HashMap<_, _> = [(inputs[0], 0u64), (inputs[1], 0x10_0000u64)]
            .into_iter()
            .collect();
        assert_eq!(
            concrete::eval(&tm, c, &bad),
            0,
            "too-large immediates are excluded"
        );
    }

    #[test]
    fn shift_spec_constrains_the_amount() {
        let mut tm = TermManager::new();
        let spec = Spec::for_opcode(Opcode::Slli, 32);
        let inputs = spec.fresh_inputs(&mut tm, "s");
        let c = spec.input_constraint(&mut tm, &inputs);
        let ok: HashMap<_, _> = [(inputs[1], 31u64)].into_iter().collect();
        let bad: HashMap<_, _> = [(inputs[1], 32u64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, c, &ok), 1);
        assert_eq!(concrete::eval(&tm, c, &bad), 0);
    }

    #[test]
    fn fixed_imm_case_folds_the_immediate() {
        let mut tm = TermManager::new();
        let spec = Spec::with_fixed_imm("NOT", Opcode::Xori, -1, 32);
        assert_eq!(spec.num_inputs(), 1);
        let inputs = spec.fresh_inputs(&mut tm, "n");
        let out = spec.result(&mut tm, &inputs);
        let env: HashMap<_, _> = [(inputs[0], 0x0f0fu64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, out, &env), 0xffff_f0f0);
    }

    #[test]
    fn lui_spec_is_the_identity_on_upper_patterns() {
        let mut tm = TermManager::new();
        let spec = Spec::for_opcode(Opcode::Lui, 32);
        assert_eq!(spec.num_inputs(), 1);
        let inputs = spec.fresh_inputs(&mut tm, "l");
        let out = spec.result(&mut tm, &inputs);
        assert_eq!(out, inputs[0]);
        let c = spec.input_constraint(&mut tm, &inputs);
        let ok: HashMap<_, _> = [(inputs[0], 0xabcd_e000u64)].into_iter().collect();
        let bad: HashMap<_, _> = [(inputs[0], 0xabcd_e001u64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, c, &ok), 1);
        assert_eq!(concrete::eval(&tm, c, &bad), 0);
    }

    #[test]
    fn there_are_26_cases_with_unique_names() {
        let cases = SynthesisCase::all(32);
        assert_eq!(cases.len(), 26);
        let mut names: Vec<&str> = cases.iter().map(|c| c.spec.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
        assert_eq!(cases[0].id, "case1");
        assert_eq!(cases[25].id, "case26");
    }

    #[test]
    #[should_panic(expected = "not synthesis targets")]
    fn memory_specs_are_rejected() {
        Spec::for_opcode(Opcode::Lw, 32);
    }
}
