//! Component-based CEGIS for one multiset of components.
//!
//! This implements the counterexample-guided inductive synthesis core used by
//! all three drivers (classical, iterative, HPF).  The encoding follows
//! Gulwani et al.'s component-based synthesis with first-order location
//! variables, restricted to one multiset, plus the paper's additional input
//! constraint that prevents the synthesized program from being the original
//! instruction itself (Section 4.1).

use std::cell::Cell;
use std::time::Duration;

use sepe_isa::{Opcode, OperandKind};
use sepe_smt::{IncrementalSolver, SatResult, SolverReuseStats, Sort, TermId, TermManager};

use crate::component::{AttrResolution, Component};
use crate::program::{EquivTemplate, ImmSlot, Slot, TemplateInstr};
use crate::spec::Spec;

/// Configuration shared by the synthesis drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisConfig {
    /// Bit width of the synthesis semantics (the paper works at 32).
    pub width: u32,
    /// Multiset size `n`: number of components per candidate program.
    pub multiset_size: usize,
    /// `k`: stop after this many equivalent programs have been found.
    pub programs_wanted: usize,
    /// Only programs with at least this many components count towards `k`
    /// (the paper uses 3).
    pub min_components: usize,
    /// Maximum number of synthesize/verify rounds per multiset.
    pub max_cegis_iterations: usize,
    /// SAT conflict budget per synthesis query.
    pub synth_conflict_limit: Option<u64>,
    /// SAT conflict budget per verification query.
    pub verify_conflict_limit: Option<u64>,
    /// The HPF influencing factor α.
    pub alpha: i64,
    /// Weight increment applied on every HPF update.
    pub weight_increment: u64,
    /// Initial choice/exclusion weights.
    pub initial_weight: u64,
    /// Wall-clock budget for a whole driver run on one specification.
    pub time_limit: Option<Duration>,
    /// Seed for the multiset shuffling used by the iterative driver.
    pub seed: u64,
    /// Word-level simplification ahead of bit-blasting in both CEGIS
    /// solvers (on by default; off is the pre-rewrite baseline used by the
    /// differential tests).
    pub simplify: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            width: 32,
            multiset_size: 3,
            programs_wanted: 20,
            min_components: 3,
            max_cegis_iterations: 16,
            synth_conflict_limit: Some(200_000),
            verify_conflict_limit: Some(200_000),
            alpha: 1,
            weight_increment: 1,
            initial_weight: 1,
            time_limit: None,
            seed: 0x5e9e,
            simplify: true,
        }
    }
}

/// Outcome of one CEGIS run on a multiset.
#[derive(Debug, Clone)]
pub enum CegisOutcome {
    /// A verified equivalent program.
    Program(EquivTemplate),
    /// The multiset cannot implement the specification.
    NoProgram,
    /// The conflict or iteration budget ran out before a verdict.
    ResourceOut,
}

impl CegisOutcome {
    /// The synthesized program, if any.
    pub fn program(self) -> Option<EquivTemplate> {
        match self {
            CegisOutcome::Program(p) => Some(p),
            _ => None,
        }
    }
}

/// The CEGIS engine for a fixed multiset of components.
#[derive(Debug, Clone)]
pub struct CegisEngine {
    config: SynthesisConfig,
    /// Solver-reuse counters accumulated over every CEGIS run of this
    /// engine (a `Cell` so the engine API can stay `&self`).
    stats: Cell<SolverReuseStats>,
}

impl CegisEngine {
    /// Creates an engine.
    pub fn new(config: SynthesisConfig) -> Self {
        CegisEngine {
            config,
            stats: Cell::new(SolverReuseStats::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Solver-reuse statistics accumulated across every synthesis call made
    /// through this engine.
    pub fn solver_stats(&self) -> SolverReuseStats {
        self.stats.get()
    }

    /// Attempts to synthesize a program equivalent to `spec` using exactly
    /// the components of `multiset`.
    ///
    /// Both sides of the refinement loop run on persistent
    /// [`IncrementalSolver`]s.  The synthesis side asserts the
    /// well-formedness constraints once and each counterexample adds its
    /// constraints monotonically.  The verification side encodes the spec
    /// (symbolic inputs, input constraint, spec semantics) once and checks
    /// each round's candidate by *assuming* the candidate/spec disequality —
    /// retracted on return instead of rebuilding the verifier from scratch —
    /// so successive candidates share subterm encodings and learnt clauses.
    pub fn synthesize_with_multiset(&self, spec: &Spec, multiset: &[&Component]) -> CegisOutcome {
        let width = self.config.width;
        let num_inputs = spec.num_inputs();
        let n = multiset.len();
        let total_locations = num_inputs + n;
        let loc_bits = location_bits(total_locations);

        let mut examples: Vec<Vec<u64>> = seed_examples(spec, width);

        // ----------------------------------------------------------
        // Persistent synthesis query state (one per multiset).
        // ----------------------------------------------------------
        let mut tm = TermManager::new();
        let mut solver = IncrementalSolver::new();
        solver.set_simplify(self.config.simplify);
        solver.set_conflict_limit(self.config.synth_conflict_limit);

        let outputs: Vec<TermId> = (0..n)
            .map(|j| tm.var(&format!("o{j}"), Sort::BitVec(loc_bits)))
            .collect();
        let inputs_loc: Vec<Vec<TermId>> = (0..n)
            .map(|j| {
                (0..multiset[j].num_inputs())
                    .map(|k| tm.var(&format!("l{j}_{k}"), Sort::BitVec(loc_bits)))
                    .collect()
            })
            .collect();
        let attrs: Vec<Option<TermId>> = (0..n)
            .map(|j| {
                multiset[j]
                    .has_attr()
                    .then(|| tm.var(&format!("attr{j}"), Sort::BitVec(width)))
            })
            .collect();

        // ψ_wfp: output locations in range and distinct, inputs strictly
        // before their component's output (acyclicity).  Asserted once.
        let lo = tm.bv_const(num_inputs as u64, loc_bits);
        let hi = tm.bv_const(total_locations as u64, loc_bits);
        for j in 0..n {
            let ge = tm.bv_ule(lo, outputs[j]);
            let lt = tm.bv_ult(outputs[j], hi);
            solver.assert_term(&mut tm, ge);
            solver.assert_term(&mut tm, lt);
            for j2 in (j + 1)..n {
                let ne = tm.neq(outputs[j], outputs[j2]);
                solver.assert_term(&mut tm, ne);
            }
            for &l in &inputs_loc[j] {
                let before = tm.bv_ult(l, outputs[j]);
                solver.assert_term(&mut tm, before);
            }
            if let Some(attr) = attrs[j] {
                let c = multiset[j].attr_constraint(&mut tm, attr);
                solver.assert_term(&mut tm, c);
            }
            // The paper's "not identical to the original instruction"
            // constraint: a component with the same base operation must
            // not read exactly the original register operands.
            if multiset[j].base_opcode() == Some(spec.opcode) && !inputs_loc[j].is_empty() {
                let regs = tm.bv_const(spec.num_reg_inputs as u64, loc_bits);
                let mut all_direct = tm.tru();
                for &l in &inputs_loc[j] {
                    let direct = tm.bv_ult(l, regs);
                    all_direct = tm.and(all_direct, direct);
                }
                let forbidden = tm.not(all_direct);
                solver.assert_term(&mut tm, forbidden);
            }
        }

        // Examples whose constraints are already asserted.
        let mut encoded_examples = 0usize;

        // ----------------------------------------------------------
        // Persistent verification query state (one per multiset).
        //
        // Every round verifies a *different* candidate, so the candidate
        // constraints cannot be asserted permanently — but the spec side
        // (symbolic inputs, input constraint, the spec's own semantics) is
        // identical across rounds.  Encoding it once on an incremental
        // solver and assuming only the per-candidate disequality makes each
        // round pay just for the candidate's own subgraph, with the
        // disequality retracted when the check returns.
        // ----------------------------------------------------------
        let mut vtm = TermManager::new();
        let mut verifier = IncrementalSolver::new();
        verifier.set_simplify(self.config.simplify);
        verifier.set_conflict_limit(self.config.verify_conflict_limit);
        let vinputs = spec.fresh_inputs(&mut vtm, "v");
        let constraint = spec.input_constraint(&mut vtm, &vinputs);
        verifier.assert_term(&mut vtm, constraint);
        let spec_out = spec.result(&mut vtm, &vinputs);

        let outcome = 'refine: {
            for _round in 0..self.config.max_cegis_iterations {
                // ----------------------------------------------------------
                // φ_lib ∧ ψ_conn ∧ φ_spec for every example not yet encoded
                // (the example set only grows, so this is monotone).
                // ----------------------------------------------------------
                while encoded_examples < examples.len() {
                    let e_idx = encoded_examples;
                    let example = examples[e_idx].clone();
                    let input_consts: Vec<TermId> =
                        example.iter().map(|&v| tm.bv_const(v, width)).collect();
                    let comp_inputs: Vec<Vec<TermId>> = (0..n)
                        .map(|j| {
                            (0..multiset[j].num_inputs())
                                .map(|k| tm.var(&format!("I{e_idx}_{j}_{k}"), Sort::BitVec(width)))
                                .collect()
                        })
                        .collect();
                    let comp_outputs: Vec<TermId> = (0..n)
                        .map(|j| tm.var(&format!("O{e_idx}_{j}"), Sort::BitVec(width)))
                        .collect();
                    for j in 0..n {
                        let sem = multiset[j].semantics(&mut tm, &comp_inputs[j], attrs[j]);
                        let eq = tm.eq(comp_outputs[j], sem);
                        solver.assert_term(&mut tm, eq);
                        for (k, &l) in inputs_loc[j].iter().enumerate() {
                            // connection to the program inputs
                            for (i, &value) in input_consts.iter().enumerate() {
                                let loc = tm.bv_const(i as u64, loc_bits);
                                let here = tm.eq(l, loc);
                                let same = tm.eq(comp_inputs[j][k], value);
                                let implied = tm.implies(here, same);
                                solver.assert_term(&mut tm, implied);
                            }
                            // connection to other components' outputs
                            for j2 in 0..n {
                                if j2 == j {
                                    continue;
                                }
                                let here = tm.eq(l, outputs[j2]);
                                let same = tm.eq(comp_inputs[j][k], comp_outputs[j2]);
                                let implied = tm.implies(here, same);
                                solver.assert_term(&mut tm, implied);
                            }
                        }
                    }
                    // The program output lives at the last location; whichever
                    // component writes it must produce the spec's value.
                    let spec_value = spec.result(&mut tm, &input_consts);
                    let last = tm.bv_const((total_locations - 1) as u64, loc_bits);
                    for j in 0..n {
                        let here = tm.eq(outputs[j], last);
                        let same = tm.eq(comp_outputs[j], spec_value);
                        let implied = tm.implies(here, same);
                        solver.assert_term(&mut tm, implied);
                    }
                    encoded_examples += 1;
                }

                match solver.check(&mut tm) {
                    SatResult::Unsat => break 'refine CegisOutcome::NoProgram,
                    SatResult::Unknown => break 'refine CegisOutcome::ResourceOut,
                    SatResult::Sat => {}
                }
                let model = solver.model(&tm);

                // ----------------------------------------------------------
                // Decode the candidate program.
                // ----------------------------------------------------------
                let decoded_outputs: Vec<u64> = outputs.iter().map(|&o| model.value(o)).collect();
                let decoded_inputs: Vec<Vec<u64>> = inputs_loc
                    .iter()
                    .map(|ls| ls.iter().map(|&l| model.value(l)).collect())
                    .collect();
                let decoded_attrs: Vec<Option<u64>> =
                    attrs.iter().map(|a| a.map(|t| model.value(t))).collect();
                let candidate = decode_program(
                    spec,
                    multiset,
                    &decoded_outputs,
                    &decoded_inputs,
                    &decoded_attrs,
                    width,
                );

                // ----------------------------------------------------------
                // Verification query: does the candidate match for all
                // inputs?  The candidate changes every round, so its
                // disequality rides along as a retractable assumption over
                // the shared spec encoding — UNSAT ("no distinguishing
                // input exists") verifies the candidate, and the next
                // round's candidate simply assumes a fresh disequality on
                // the same solver, reusing every shared subterm encoding
                // and all learnt clauses.
                // ----------------------------------------------------------
                let prog_out = template_result_term(&mut vtm, &candidate, spec, &vinputs);
                let differ = vtm.neq(spec_out, prog_out);
                match verifier.check_assuming(&mut vtm, &[differ]) {
                    SatResult::Unsat => break 'refine CegisOutcome::Program(candidate),
                    SatResult::Unknown => break 'refine CegisOutcome::ResourceOut,
                    SatResult::Sat => {
                        let cex_model = verifier.model(&vtm);
                        let cex: Vec<u64> = vinputs.iter().map(|&v| cex_model.value(v)).collect();
                        if examples.contains(&cex) {
                            // No progress (should not happen); avoid looping.
                            break 'refine CegisOutcome::ResourceOut;
                        }
                        examples.push(cex);
                    }
                }
            }
            CegisOutcome::ResourceOut
        };

        let mut accumulated = self.stats.get();
        accumulated.absorb(&solver.stats());
        accumulated.absorb(&verifier.stats());
        self.stats.set(accumulated);
        outcome
    }
}

/// Number of bits needed to address `total` locations.
fn location_bits(total: usize) -> u32 {
    let mut bits = 1;
    while (1usize << bits) < total + 1 {
        bits += 1;
    }
    bits
}

/// Initial example inputs, respecting the spec's input constraint.
fn seed_examples(spec: &Spec, width: u32) -> Vec<Vec<u64>> {
    let mask = sepe_smt::sort::mask(u64::MAX, width);
    let reg_patterns: [u64; 2] = [0x0000_0003 & mask, 0xdead_beef & mask];
    let imm_patterns: Vec<u64> = match spec.opcode.operand_kind() {
        OperandKind::RegShamt => vec![1, u64::from(width) - 1],
        OperandKind::Upper => vec![0x1000 & mask, 0x7f00_0000 & mask & !0xfff],
        _ => vec![1, mask], // 1 and -1
    };
    (0..2)
        .map(|i| {
            let mut example = Vec::new();
            for r in 0..spec.num_reg_inputs {
                example.push(reg_patterns[(i + r) % reg_patterns.len()]);
            }
            if spec.has_imm_input {
                example.push(imm_patterns[i % imm_patterns.len()]);
            }
            example
        })
        .collect()
}

/// Turns a satisfying synthesis model into an [`EquivTemplate`].
fn decode_program(
    spec: &Spec,
    multiset: &[&Component],
    outputs: &[u64],
    input_locs: &[Vec<u64>],
    attrs: &[Option<u64>],
    width: u32,
) -> EquivTemplate {
    let num_inputs = spec.num_inputs();
    let total = num_inputs + multiset.len();
    let imm_loc = spec.imm_input_index();

    // Does any component read the immediate input?  If so it must be
    // materialised into a temporary first.
    let reads_imm =
        imm_loc.is_some_and(|imm| input_locs.iter().flatten().any(|&l| l as usize == imm));

    let mut next_temp: u8 = 0;
    let mut location_slot: Vec<Slot> = Vec::with_capacity(total);
    for i in 0..num_inputs {
        if Some(i) == imm_loc {
            if reads_imm {
                location_slot.push(Slot::Temp(next_temp));
                next_temp += 1;
            } else {
                location_slot.push(Slot::Zero); // never read
            }
        } else if i == 0 {
            location_slot.push(Slot::Rs1);
        } else {
            location_slot.push(Slot::Rs2);
        }
    }
    for loc in num_inputs..total {
        if loc == total - 1 {
            location_slot.push(Slot::Dest);
        } else {
            location_slot.push(Slot::Temp(next_temp));
            next_temp += 1;
        }
    }

    let mut instrs: Vec<TemplateInstr> = Vec::new();
    if reads_imm {
        let imm_slot_loc = location_slot[imm_loc.expect("imm location")];
        let opcode = match spec.opcode.operand_kind() {
            OperandKind::Upper => Opcode::Lui,
            _ => Opcode::Addi,
        };
        instrs.push(TemplateInstr {
            opcode,
            dest: imm_slot_loc,
            src1: Slot::Zero,
            src2: Slot::Zero,
            imm: ImmSlot::FromOriginal,
        });
    }

    // Emit components in program order (by output location).
    let mut order: Vec<usize> = (0..multiset.len()).collect();
    order.sort_by_key(|&j| outputs[j]);
    let mut component_names = Vec::new();
    for j in order {
        let component = multiset[j];
        component_names.push(component.name.clone());
        let inputs: Vec<Slot> = input_locs[j]
            .iter()
            .map(|&l| location_slot[l as usize])
            .collect();
        let dest = location_slot[outputs[j] as usize];
        let attr =
            attrs[j].map(|raw| AttrResolution::Const(i64::from(component.attr_to_imm(raw, width))));
        instrs.extend(component.expand(&inputs, attr, dest, &mut next_temp));
    }

    EquivTemplate {
        for_opcode: spec.opcode,
        instrs,
        component_names,
    }
}

/// Builds the symbolic result of a template over the spec's symbolic inputs
/// (used by the verification query and by the EDSEP-V consistency tests).
pub fn template_result_term(
    tm: &mut TermManager,
    template: &EquivTemplate,
    spec: &Spec,
    spec_inputs: &[TermId],
) -> TermId {
    let width = spec.width;
    let imm_input = spec.imm_input_index().map(|i| spec_inputs[i]);
    let zero = tm.zero(width);
    let mut temps: std::collections::HashMap<u8, TermId> = std::collections::HashMap::new();
    let mut dest = zero;
    let read = |tm: &mut TermManager,
                temps: &std::collections::HashMap<u8, TermId>,
                dest: TermId,
                slot: Slot,
                spec_inputs: &[TermId]| {
        match slot {
            Slot::Rs1 => spec_inputs[0],
            Slot::Rs2 => {
                if spec.num_reg_inputs >= 2 {
                    spec_inputs[1]
                } else {
                    tm.zero(width)
                }
            }
            Slot::Zero => tm.zero(width),
            Slot::Dest => dest,
            Slot::Temp(t) => temps.get(&t).copied().unwrap_or_else(|| tm.zero(width)),
        }
    };
    for instr in &template.instrs {
        let imm_term = match instr.imm {
            ImmSlot::FromOriginal => imm_input.expect("template uses the original immediate"),
            ImmSlot::Const(c) => match instr.opcode {
                Opcode::Lui => tm.bv_const(((c as u32) as u64) << 12, width),
                _ => sepe_isa::semantics::imm_term(tm, c, width),
            },
        };
        let a = read(tm, &temps, dest, instr.src1, spec_inputs);
        let b = read(tm, &temps, dest, instr.src2, spec_inputs);
        let value = match instr.opcode {
            Opcode::Lui => imm_term,
            op => match op.operand_kind() {
                OperandKind::RegReg => sepe_isa::semantics::alu_result(tm, op, a, b),
                OperandKind::RegImm | OperandKind::RegShamt => {
                    sepe_isa::semantics::alu_result(tm, op, a, imm_term)
                }
                _ => unreachable!("templates never contain memory instructions"),
            },
        };
        match instr.dest {
            Slot::Dest => dest = value,
            Slot::Temp(t) => {
                temps.insert(t, value);
            }
            other => unreachable!("templates never write {other:?}"),
        }
    }
    dest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::program::listing1_sub_template;
    use sepe_smt::solver::is_valid;

    fn engine(width: u32) -> CegisEngine {
        CegisEngine::new(SynthesisConfig {
            width,
            ..SynthesisConfig::default()
        })
    }

    #[test]
    fn template_result_term_matches_listing1() {
        let mut tm = TermManager::new();
        let spec = Spec::for_opcode(Opcode::Sub, 16);
        let inputs = spec.fresh_inputs(&mut tm, "q");
        let prog = template_result_term(&mut tm, &listing1_sub_template(), &spec, &inputs);
        let sub = spec.result(&mut tm, &inputs);
        let eq = tm.eq(prog, sub);
        assert_eq!(is_valid(&mut tm, eq, None), SatResult::Sat);
    }

    #[test]
    fn synthesizes_sub_from_xori_add_xori() {
        // Force the Listing-1 multiset: {XORI, ADD, XORI}.
        let lib = Library::standard();
        let xori = lib.find("XORI").expect("XORI exists");
        let add = lib.find("ADD").expect("ADD exists");
        let spec = Spec::for_opcode(Opcode::Sub, 16);
        let outcome = engine(16).synthesize_with_multiset(&spec, &[xori, add, xori]);
        let program = match outcome {
            CegisOutcome::Program(p) => p,
            other => panic!("expected a program, got {other:?}"),
        };
        assert_eq!(program.for_opcode, Opcode::Sub);
        assert!(program.len() >= 3);
        // the synthesized program must hold at 32 bits as well (differential)
        assert_eq!(program.differential_check(0, 300, 42), 0);
    }

    #[test]
    fn synthesizes_add_from_sub_components() {
        // The paper's motivating example: represent ADD with SUBs.
        let lib = Library::standard();
        let sub = lib.find("SUB").expect("SUB exists");
        let spec = Spec::for_opcode(Opcode::Add, 16);
        let outcome = engine(16).synthesize_with_multiset(&spec, &[sub, sub, sub]);
        let program = match outcome {
            CegisOutcome::Program(p) => p,
            other => panic!("expected a program, got {other:?}"),
        };
        assert_eq!(program.differential_check(0, 300, 7), 0);
    }

    #[test]
    fn rejects_impossible_multisets() {
        // AND/OR alone cannot implement ADD.
        let lib = Library::standard();
        let and = lib.find("AND").expect("AND exists");
        let or = lib.find("OR").expect("OR exists");
        let spec = Spec::for_opcode(Opcode::Add, 8);
        let outcome = engine(8).synthesize_with_multiset(&spec, &[and, or]);
        assert!(
            matches!(outcome, CegisOutcome::NoProgram),
            "got {outcome:?}"
        );
    }

    #[test]
    fn excludes_the_identity_program() {
        // A single ADD component for the ADD spec must not synthesize the
        // identity `add rd, rs1, rs2`; with only one component available the
        // query is unsatisfiable.
        let lib = Library::standard();
        let add = lib.find("ADD").expect("ADD exists");
        let spec = Spec::for_opcode(Opcode::Add, 8);
        let outcome = engine(8).synthesize_with_multiset(&spec, &[add]);
        assert!(
            matches!(outcome, CegisOutcome::NoProgram),
            "got {outcome:?}"
        );
    }

    #[test]
    fn synthesizes_an_immediate_spec_using_the_original_imm() {
        // XORI rd rs1 imm can be implemented by materialising the immediate
        // and applying the XOR component.
        let lib = Library::standard();
        let xor = lib.find("XOR").expect("XOR exists");
        let add = lib.find("ADD").expect("ADD exists");
        let spec = Spec::for_opcode(Opcode::Xori, 16);
        let outcome = engine(16).synthesize_with_multiset(&spec, &[xor, add]);
        let program = match outcome {
            CegisOutcome::Program(p) => p,
            other => panic!("expected a program, got {other:?}"),
        };
        assert!(program.uses_original_imm());
        for imm in [-1, 0, 1, 100, -2048, 2047] {
            assert_eq!(program.differential_check(imm, 100, 3), 0, "imm={imm}");
        }
    }

    #[test]
    fn location_bits_covers_the_range() {
        assert!(location_bits(2) >= 1);
        assert!((1usize << location_bits(5)) > 5);
        assert!((1usize << location_bits(8)) > 8);
        assert!((1usize << location_bits(33)) > 33);
    }
}
