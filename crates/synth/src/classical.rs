//! Classical component-based CEGIS (Gulwani et al.).
//!
//! The whole component library is instantiated as one big multiset and the
//! location-variable encoding has to pick a program out of all of it at once.
//! The paper reports that this baseline failed to synthesize a single
//! instruction after several weeks with the 29-component library; this
//! implementation exists to reproduce that comparison point under an explicit
//! resource budget rather than to be useful.

use std::time::Instant;

use crate::cegis::{CegisEngine, CegisOutcome, SynthesisConfig};
use crate::component::Component;
use crate::library::Library;
use crate::spec::Spec;
use crate::SynthesisResult;

/// The classical CEGIS driver.
#[derive(Debug, Clone)]
pub struct ClassicalCegis {
    config: SynthesisConfig,
    library: Library,
}

impl ClassicalCegis {
    /// Creates a driver.
    pub fn new(config: SynthesisConfig, library: Library) -> Self {
        ClassicalCegis { config, library }
    }

    /// Attempts synthesis with the entire library as a single multiset.
    pub fn synthesize(&self, spec: &Spec) -> SynthesisResult {
        let start = Instant::now();
        let engine = CegisEngine::new(self.config.clone());
        let components: Vec<&Component> = self.library.components().iter().collect();
        let outcome = engine.synthesize_with_multiset(spec, &components);
        let mut programs = Vec::new();
        let mut successful = 0;
        if let CegisOutcome::Program(p) = outcome {
            successful = 1;
            programs.push(p);
        }
        SynthesisResult {
            spec_name: spec.name.clone(),
            programs,
            multisets_tried: 1,
            multisets_successful: successful,
            duration: start.elapsed(),
            solver: engine.solver_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Opcode;

    #[test]
    fn classical_cegis_struggles_even_on_a_small_library() {
        // With a tight conflict budget the classical encoding usually runs
        // out of resources; either way it must terminate and report
        // consistently.
        let config = SynthesisConfig {
            width: 8,
            synth_conflict_limit: Some(2_000),
            verify_conflict_limit: Some(2_000),
            max_cegis_iterations: 3,
            ..SynthesisConfig::default()
        };
        let driver = ClassicalCegis::new(config, Library::standard());
        let spec = Spec::for_opcode(Opcode::Sub, 8);
        let result = driver.synthesize(&spec);
        assert_eq!(result.multisets_tried, 1);
        assert!(result.multisets_successful <= 1);
        // if it did synthesize something, it must be correct
        for p in &result.programs {
            assert_eq!(p.differential_check(0, 50, 1), 0);
        }
    }
}
