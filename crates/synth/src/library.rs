//! The standard component library (29 components: 10 NIC, 10 DIC, 9 CIC).

use sepe_isa::Opcode;

use crate::component::{Component, ComponentClass, ComponentKind};

/// A library of synthesis components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    components: Vec<Component>,
}

impl Library {
    /// Creates a library from explicit components.
    pub fn new(components: Vec<Component>) -> Self {
        Library { components }
    }

    /// The standard 29-component library of the paper's evaluation:
    /// 10 native (R-type) components, 10 derived (immediate-as-attribute)
    /// components and 9 composite components.
    pub fn standard() -> Self {
        use ComponentClass::*;
        use ComponentKind::*;
        let mut components = Vec::new();
        // 10 NICs: the R-type ALU instructions.
        for op in [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Sll,
            Opcode::Slt,
            Opcode::Sltu,
            Opcode::Xor,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Or,
            Opcode::And,
        ] {
            components.push(Component::new(Nic, Native(op)));
        }
        // 10 DICs: immediate-form instructions with the immediate as an
        // internal attribute.
        for op in [
            Opcode::Addi,
            Opcode::Slti,
            Opcode::Sltiu,
            Opcode::Xori,
            Opcode::Ori,
            Opcode::Andi,
            Opcode::Slli,
            Opcode::Srli,
            Opcode::Srai,
            Opcode::Lui,
        ] {
            components.push(Component::new(Dic, Derived(op)));
        }
        // 9 CICs.
        for kind in [
            MulByConst(Opcode::Mul),
            MulByConst(Opcode::Mulh),
            MulByConst(Opcode::Mulhu),
            MulByConst(Opcode::Mulhsu),
            ShiftLeftAdd,
            Negate,
            LoadImmediate,
            AndNot,
            SignBit,
        ] {
            components.push(Component::new(Cic, kind));
        }
        Library { components }
    }

    /// A reduced library for fast unit tests (a handful of NIC/DIC/CIC
    /// components sufficient for the classic identities).
    pub fn minimal() -> Self {
        use ComponentClass::*;
        use ComponentKind::*;
        Library {
            components: vec![
                Component::new(Nic, Native(Opcode::Add)),
                Component::new(Nic, Native(Opcode::Sub)),
                Component::new(Nic, Native(Opcode::Xor)),
                Component::new(Nic, Native(Opcode::Or)),
                Component::new(Nic, Native(Opcode::And)),
                Component::new(Dic, Derived(Opcode::Xori)),
                Component::new(Dic, Derived(Opcode::Addi)),
                Component::new(Cic, Negate),
                Component::new(Cic, AndNot),
            ],
        }
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Looks up a component by name.
    pub fn find(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Number of components of a given class.
    pub fn count_class(&self, class: ComponentClass) -> usize {
        self.components.iter().filter(|c| c.class == class).count()
    }

    /// All multisets (combinations with replacement) of `size` component
    /// indices — the enumeration primitive of both the iterative CEGIS and
    /// HPF-CEGIS drivers.
    pub fn multisets(&self, size: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(size);
        combinations_with_replacement(self.components.len(), size, 0, &mut current, &mut out);
        out
    }
}

fn combinations_with_replacement(
    n: usize,
    size: usize,
    start: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if current.len() == size {
        out.push(current.clone());
        return;
    }
    for i in start..n {
        current.push(i);
        combinations_with_replacement(n, size, i, current, out);
        current.pop();
    }
}

/// The binomial-style count of multisets of size `k` from `n` items
/// (`C(n + k - 1, k)`), used in reports to match the paper's discussion of
/// the iterative CEGIS search-space blow-up.
pub fn multiset_count(n: usize, k: usize) -> u128 {
    // C(n + k - 1, k)
    let top = (n + k - 1) as u128;
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 0..k as u128 {
        num *= top - i;
        den *= i + 1;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_matches_the_paper_counts() {
        let lib = Library::standard();
        assert_eq!(lib.len(), 29);
        assert_eq!(lib.count_class(ComponentClass::Nic), 10);
        assert_eq!(lib.count_class(ComponentClass::Dic), 10);
        assert_eq!(lib.count_class(ComponentClass::Cic), 9);
        // names must be unique
        let mut names: Vec<&str> = lib.components().iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
        assert!(lib.find("ADD").is_some());
        assert!(lib.find("MULH_CONST").is_some());
        assert!(lib.find("NOPE").is_none());
    }

    #[test]
    fn multiset_enumeration_matches_the_formula() {
        let lib = Library::minimal();
        let n = lib.len();
        for k in 1..=3 {
            let sets = lib.multisets(k);
            assert_eq!(sets.len() as u128, multiset_count(n, k));
            // each multiset is sorted (non-decreasing indices) and unique
            let mut seen = std::collections::HashSet::new();
            for s in &sets {
                assert!(s.windows(2).all(|w| w[0] <= w[1]));
                assert!(seen.insert(s.clone()));
            }
        }
    }

    #[test]
    fn paper_example_multiset_count() {
        // the paper: 29 components, multisets of 6 -> 1,344,904
        assert_eq!(multiset_count(29, 6), 1_344_904);
    }
}
