//! Iterative CEGIS (Buchwald et al.), the paper's main baseline.
//!
//! Multisets of components are enumerated by combinations-with-replacement of
//! increasing size and attempted one after another.  Following the paper's
//! fairness note, multisets of equal size are shuffled (with a fixed seed for
//! reproducibility) so that similar component types do not cluster.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cegis::{CegisEngine, CegisOutcome, SynthesisConfig};
use crate::component::Component;
use crate::library::Library;
use crate::spec::Spec;
use crate::SynthesisResult;

/// The iterative CEGIS driver.
#[derive(Debug, Clone)]
pub struct IterativeCegis {
    config: SynthesisConfig,
    library: Library,
}

impl IterativeCegis {
    /// Creates a driver.
    pub fn new(config: SynthesisConfig, library: Library) -> Self {
        IterativeCegis { config, library }
    }

    /// Synthesizes equivalent programs for one original instruction, trying
    /// multisets of size 1 up to the configured multiset size.
    pub fn synthesize(&self, spec: &Spec) -> SynthesisResult {
        let start = Instant::now();
        let engine = CegisEngine::new(self.config.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut programs = Vec::new();
        let mut counted = 0usize;
        let mut tried = 0;
        let mut successful = 0;

        'sizes: for size in 1..=self.config.multiset_size {
            let mut multisets = self.library.multisets(size);
            multisets.shuffle(&mut rng);
            for multiset in multisets {
                if let Some(limit) = self.config.time_limit {
                    if start.elapsed() > limit {
                        break 'sizes;
                    }
                }
                if counted >= self.config.programs_wanted {
                    break 'sizes;
                }
                let components: Vec<&Component> = multiset
                    .iter()
                    .map(|&i| &self.library.components()[i])
                    .collect();
                tried += 1;
                if let CegisOutcome::Program(program) =
                    engine.synthesize_with_multiset(spec, &components)
                {
                    successful += 1;
                    if program.component_names.len() >= self.config.min_components {
                        counted += 1;
                    }
                    programs.push(program);
                }
            }
        }

        SynthesisResult {
            spec_name: spec.name.clone(),
            programs,
            multisets_tried: tried,
            multisets_successful: successful,
            duration: start.elapsed(),
            solver: engine.solver_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Opcode;
    use std::time::Duration;

    #[test]
    fn iterative_finds_programs_for_sub() {
        let config = SynthesisConfig {
            width: 8,
            multiset_size: 3,
            programs_wanted: 1,
            min_components: 2,
            max_cegis_iterations: 8,
            synth_conflict_limit: Some(20_000),
            verify_conflict_limit: Some(20_000),
            time_limit: Some(Duration::from_secs(60)),
            ..SynthesisConfig::default()
        };
        let driver = IterativeCegis::new(config, Library::minimal());
        let spec = Spec::for_opcode(Opcode::Sub, 8);
        let result = driver.synthesize(&spec);
        assert!(result.succeeded());
        assert!(result.multisets_tried >= result.multisets_successful);
        // every reported program is verified at the synthesis width; re-prove
        // the first one through an independent validity query
        let p = result.best().unwrap();
        let mut tm = sepe_smt::TermManager::new();
        let inputs = spec.fresh_inputs(&mut tm, "chk");
        let prog_out = crate::cegis::template_result_term(&mut tm, p, &spec, &inputs);
        let spec_out = spec.result(&mut tm, &inputs);
        let eq = tm.eq(prog_out, spec_out);
        assert_eq!(
            sepe_smt::solver::is_valid(&mut tm, eq, None),
            sepe_smt::SatResult::Sat
        );
    }

    #[test]
    fn shuffling_is_deterministic_for_a_fixed_seed() {
        let config = SynthesisConfig {
            width: 8,
            multiset_size: 2,
            programs_wanted: 1,
            min_components: 1,
            time_limit: Some(Duration::from_secs(30)),
            ..SynthesisConfig::default()
        };
        let driver = IterativeCegis::new(config.clone(), Library::minimal());
        let spec = Spec::for_opcode(Opcode::Xor, 8);
        let a = driver.synthesize(&spec);
        let b = driver.synthesize(&spec);
        assert_eq!(a.multisets_tried, b.multisets_tried);
        assert_eq!(a.programs.len(), b.programs.len());
    }
}
