//! Synthesis explorer: run HPF-CEGIS and iterative CEGIS side by side on a
//! few original instructions and compare how many multisets each had to try
//! (the mechanism behind the paper's Figure 3 speed-up).
//!
//! Run with `cargo run --release --example synthesis_explorer`.

use sepe_isa::Opcode;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::iterative::IterativeCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::Spec;
use sepe_synth::SynthesisConfig;

fn main() {
    let width = 8;
    let config = SynthesisConfig {
        width,
        multiset_size: 3,
        programs_wanted: 3,
        min_components: 3,
        max_cegis_iterations: 8,
        synth_conflict_limit: Some(50_000),
        verify_conflict_limit: Some(50_000),
        time_limit: Some(std::time::Duration::from_secs(30)),
        ..SynthesisConfig::default()
    };
    let library = Library::standard();
    println!(
        "library: {} components ({} NIC / {} DIC / {} CIC)\n",
        library.len(),
        library.count_class(sepe_synth::ComponentClass::Nic),
        library.count_class(sepe_synth::ComponentClass::Dic),
        library.count_class(sepe_synth::ComponentClass::Cic),
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "case", "hpf tried", "iter tried", "hpf time", "iter time", "speed-up"
    );
    for opcode in [Opcode::Sub, Opcode::Add, Opcode::And, Opcode::Or] {
        let spec = Spec::for_opcode(opcode, width);
        let mut hpf = HpfCegis::new(config.clone(), library.clone());
        let hpf_result = hpf.synthesize(&spec);
        let iterative = IterativeCegis::new(config.clone(), library.clone());
        let iter_result = iterative.synthesize(&spec);
        println!(
            "{:<8} {:>12} {:>12} {:>9.2?} {:>9.2?} {:>8.2}x",
            spec.name,
            hpf_result.multisets_tried,
            iter_result.multisets_tried,
            hpf_result.duration,
            iter_result.duration,
            iter_result.duration.as_secs_f64() / hpf_result.duration.as_secs_f64().max(1e-9),
        );
        if let Some(p) = hpf_result.best() {
            println!(
                "  first HPF program uses: {}",
                p.component_names.join(" + ")
            );
        }
    }
}
