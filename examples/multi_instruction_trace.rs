//! Multiple-instruction bugs (Figure 4 of the paper): both methods detect
//! them; compare detection time and counterexample length.
//!
//! Run with `cargo run --release --example multi_instruction_trace -- 5`
//! where the argument is the Figure-4 bug number (1–20).

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};

/// Opcode universe that gives each Figure-4 bug a chance to fire (the bug's
/// trigger opcodes plus ADDI/XORI for operand setup).
fn universe(bug: &Mutation) -> Vec<Opcode> {
    let mut ops = vec![Opcode::Addi, Opcode::Xori];
    ops.extend(bug.trigger.opcode);
    ops.extend(bug.trigger.prev_opcode);
    ops.extend(bug.trigger.prev2_opcode);
    ops.sort();
    ops.dedup();
    ops
}

fn main() {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&i| (1..=20).contains(&i))
        .unwrap_or(5);
    let bug = Mutation::figure4()[index - 1].clone();
    println!("# Figure-4 bug {index}: {} — {}", bug.name, bug.description);

    let detector = Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&universe(&bug)),
        max_bound: 12,
        ..DetectorConfig::default()
    });

    let mut lengths = Vec::new();
    for method in [Method::Sqed, Method::SepeSqed] {
        let detection = detector.check(method, Some(&bug));
        println!(
            "{method:9}: detected={:5}  runtime={:>9.3?}  counterexample length={}",
            detection.detected,
            detection.runtime,
            detection
                .trace_len
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        lengths.push(detection.trace_len);
    }
    if let (Some(Some(sqed)), Some(Some(sepe))) = (lengths.first(), lengths.get(1)) {
        println!(
            "\ncounterexample length ratio SQED/SEPE-SQED = {:.2} (Figure 4's yellow curve)",
            *sqed as f64 / *sepe as f64
        );
    }
}
