//! Batched multi-bug detection: answer a whole mutation catalogue over one
//! shared unrolling.
//!
//! The per-job engine treats every bug as an independent detector — one
//! term manager, one unrolling, one cold SAT solver each.  The batched
//! path builds the transition system **once** with every catalogue entry's
//! mutation behind its own activation literal, encodes it once into a
//! persistent incremental solver, and answers each entry with one-hot
//! `check_assuming` flips per depth, reusing learnt clauses across entries.
//!
//! Run with `cargo run --release --example mutation_catalogue`.

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{DetectorConfig, Method};
use sepe_sqed::parallel::{BatchSpec, Engine, RetryPolicy};
use sepe_sqed::CatalogueEntry;
use sepe_tsys::BmcMode;

fn main() {
    // The catalogue: the first three Table-1 bugs, plus the shared opcode
    // universe their triggers need (ADDI constructs operand values).
    let bugs: Vec<Mutation> = Mutation::table1().into_iter().take(3).collect();
    let mut ops = vec![Opcode::Addi];
    ops.extend(bugs.iter().filter_map(|b| b.target_opcode()));
    ops.sort();
    ops.dedup();
    let catalogue: Vec<CatalogueEntry> = bugs
        .iter()
        .map(|b| CatalogueEntry::new(b.name.clone(), b.clone()))
        .collect();

    // One shared configuration for the whole catalogue, via the builder:
    // per-depth sweeps report shortest counterexamples, and the retry
    // ladder rescues entries whose queries fail on the shared solver.
    let config = DetectorConfig::builder()
        .processor(ProcessorConfig::tiny().with_opcodes(&ops))
        .bound(3)
        .bmc_mode(BmcMode::PerDepth)
        .retry(RetryPolicy::ladder(2))
        .build();

    println!(
        "# Batched SEPE-SQED over {} catalogue entries\n",
        bugs.len()
    );
    let outcome = Engine::new(1)
        .run(BatchSpec::catalogue(Method::SepeSqed, config, catalogue))
        .expect_catalogue();

    for (bug, d) in bugs.iter().zip(&outcome.detections) {
        println!(
            "{:<14} detected: {:<5} bound: {}  trace length: {}",
            bug.name,
            d.detected,
            d.bound_reached,
            d.trace_len
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nbatched: {}", outcome.stats);
    println!(
        "one encoding answered {} entries ({} shared CNF clauses, {} queries); \
         the per-job engine would pay {} encodings.",
        outcome.stats.entries,
        outcome.stats.solver.cnf_clauses,
        outcome.stats.queries,
        outcome.stats.entries,
    );
}
