//! Quickstart: the full SEPE-SQED flow on one instruction.
//!
//! 1. Show the Listing-1 equivalence (`SUB` vs `XORI/ADD/XORI`) and its
//!    EDSEP-V register allocation (Listing 2).
//! 2. Synthesize an equivalent program for `SUB` with HPF-CEGIS.
//! 3. Inject the Table-1 `SUB` bug and show that SQED misses it while
//!    SEPE-SQED produces a counterexample.
//!
//! Run with `cargo run --release --example quickstart`.

use sepe_isa::{Instr, Opcode, Reg};
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::EdsepV;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::Spec;
use sepe_synth::SynthesisConfig;

fn main() {
    // ------------------------------------------------------------------
    // 1. The Listing-1 / Listing-2 transformation.
    // ------------------------------------------------------------------
    let edsepv = EdsepV::curated();
    let original = Instr::sub(Reg(1), Reg(2), Reg(3));
    println!("# Original instruction\n{original}\n");
    println!("# Semantically equivalent program (EDSEP-V, Listing 2)");
    for instr in edsepv.equivalent_program(&original) {
        println!("{instr}");
    }

    // ------------------------------------------------------------------
    // 2. Synthesize an equivalent program with HPF-CEGIS.
    // ------------------------------------------------------------------
    println!("\n# HPF-CEGIS synthesis for SUB (8-bit semantics, minimal library)");
    let config = SynthesisConfig {
        width: 8,
        multiset_size: 3,
        programs_wanted: 1,
        ..SynthesisConfig::default()
    };
    let mut hpf = HpfCegis::new(config, Library::minimal());
    let result = hpf.synthesize(&Spec::for_opcode(Opcode::Sub, 8));
    println!(
        "tried {} multisets, {} successful, {:.2?} elapsed",
        result.multisets_tried, result.multisets_successful, result.duration
    );
    if let Some(program) = result.best() {
        println!("{program}");
    }

    // ------------------------------------------------------------------
    // 3. Detect the Table-1 SUB bug.
    // ------------------------------------------------------------------
    println!("# Mutation testing: SUB computes an addition");
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Sub))
        .expect("SUB bug exists");
    let detector = Detector::new(
        DetectorConfig::builder()
            .processor(ProcessorConfig::tiny().with_opcodes(&[Opcode::Sub, Opcode::Addi]))
            .bound(8)
            .build(),
    );
    for method in [Method::Sqed, Method::SepeSqed] {
        let detection = detector.check(method, Some(&bug));
        println!(
            "{method:9}  detected: {:5}  time: {:>8}  trace length: {}",
            detection.detected,
            detection.table_cell(),
            detection
                .trace_len
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nSQED reports '-' (single-instruction bugs are invisible to duplication),");
    println!("SEPE-SQED reports a counterexample — the headline result of the paper.");
}
