//! Single-instruction bug hunt (Table 1 of the paper, one row at a time).
//!
//! Picks one injected single-instruction bug (by mnemonic, default `xor`),
//! runs both SQED and SEPE-SQED, and prints the SEPE-SQED counterexample
//! trace frame by frame.
//!
//! Run with `cargo run --release --example single_instruction_bug -- xor`.

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "xor".to_string());
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| {
            b.target_opcode()
                .map(|o| o.mnemonic().eq_ignore_ascii_case(&wanted))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| {
            eprintln!("unknown Table-1 mnemonic '{wanted}', falling back to xor");
            Mutation::table1().remove(2)
        });
    let target = bug
        .target_opcode()
        .expect("single-instruction bugs target an opcode");
    println!("# Injected bug: {} — {}", bug.name, bug.description);

    // The experiment universe: the buggy opcode plus ADDI so the solver can
    // manufacture distinguishing operand values.
    let detector = Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[target, Opcode::Addi]),
        max_bound: 12,
        ..DetectorConfig::default()
    });

    let sqed = detector.check(Method::Sqed, Some(&bug));
    println!(
        "SQED      : detected={} (bound explored: {}) -> table cell: {}",
        sqed.detected,
        sqed.bound_reached,
        sqed.table_cell()
    );

    let sepe = detector.check(Method::SepeSqed, Some(&bug));
    println!(
        "SEPE-SQED : detected={} in {:.2?}, counterexample of {} committed instructions",
        sepe.detected,
        sepe.runtime,
        sepe.trace_len.unwrap_or(0)
    );

    if let Some(witness) = &sepe.witness {
        println!("\n# Counterexample (inputs per cycle)");
        for (k, frame) in witness
            .frames()
            .iter()
            .enumerate()
            .take(witness.num_steps())
        {
            let pick = frame.input("pick_original") == 1;
            println!(
                "cycle {k:2}: {}  op={:2} rd={:2} rs1={:2} rs2={:2} imm={:#x}",
                if pick { "original  " } else { "equivalent" },
                if pick {
                    frame.input("orig_op")
                } else {
                    frame.state("q0_op")
                },
                if pick {
                    frame.input("orig_rd")
                } else {
                    frame.state("q0_rd")
                },
                if pick {
                    frame.input("orig_rs1")
                } else {
                    frame.state("q0_rs1")
                },
                if pick {
                    frame.input("orig_rs2")
                } else {
                    frame.state("q0_rs2")
                },
                if pick {
                    frame.input("orig_imm")
                } else {
                    frame.state("q0_imm")
                },
            );
        }
        let last = witness.last();
        println!("\n# Final register file (original set vs equivalent set)");
        for i in 0..13u64 {
            let o = last.state(&format!("reg{i:02}"));
            let e = last.state(&format!("reg{:02}", i + 13));
            let marker = if o != e { "  <-- inconsistent" } else { "" };
            println!("x{i:<2} = {o:#06x}   x{:<2} = {e:#06x}{marker}", i + 13);
        }
    }
}
