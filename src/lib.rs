//! Workspace façade: re-exports the SEPE-SQED reproduction crates so the
//! top-level `tests/` and `examples/` can depend on a single package, and so
//! downstream users get one import surface.

pub use sepe_isa as isa;
pub use sepe_processor as processor;
pub use sepe_smt as smt;
pub use sepe_sqed as sqed;
pub use sepe_synth as synth;
pub use sepe_tsys as tsys;
