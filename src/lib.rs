//! Workspace façade: re-exports the SEPE-SQED reproduction crates so the
//! top-level `tests/` and `examples/` can depend on a single package, and so
//! downstream users get one import surface.
//!
//! # Example
//!
//! Everything below is reachable through this one crate: build a detector
//! for the clean tiny design and confirm it is self-consistent.
//!
//! ```
//! use sepe::isa::Opcode;
//! use sepe::processor::ProcessorConfig;
//! use sepe::sqed::detect::{Detector, DetectorConfig, Method};
//!
//! let detector = Detector::new(DetectorConfig {
//!     processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Xori]),
//!     max_bound: 2,
//!     ..DetectorConfig::default()
//! });
//! let detection = detector.check(Method::Sqed, None);
//! assert!(!detection.detected, "the unmutated design is self-consistent");
//! ```

pub use sepe_isa as isa;
pub use sepe_processor as processor;
pub use sepe_smt as smt;
pub use sepe_sqed as sqed;
pub use sepe_synth as synth;
pub use sepe_tsys as tsys;
